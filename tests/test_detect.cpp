// Heartbeat failure detector tests: the membership view's oracle
// fallback, detector-mode kill recovery (deaths *detected* through
// one-sided probes, not read from the fault oracle), the false-suspicion
// safety property (a stalled-but-alive rank whose queue was adopted under
// a lease fence resumes, aborts, and nothing executes twice), detection
// latency analysis over the trace, determinism of detector-mode replays,
// and the C API knobs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "detect/membership.hpp"
#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "scioto/scioto_c.h"
#include "test_util.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

/// Stages the detector on for the enclosing scope and restores the prior
/// staged config on exit (run_spmd arms/disarms the session itself).
class DetectorGuard {
 public:
  explicit DetectorGuard(const detect::Config* tuned = nullptr)
      : saved_(detect::config()) {
    detect::Config c = tuned ? *tuned : saved_;
    c.enabled = true;
    detect::set_config(c);
  }
  ~DetectorGuard() { detect::set_config(saved_); }

 private:
  detect::Config saved_;
};

apps::UtsResult run_uts_detector(int nranks, const std::string& plan,
                                 std::uint64_t seed,
                                 const apps::UtsParams& tree,
                                 pgas::BackendKind backend =
                                     pgas::BackendKind::Sim) {
  fault::start(nranks, fault::FaultPlan::parse(plan), seed);
  apps::UtsResult res;
  testing::run(
      nranks, backend,
      [&](Runtime& rt) {
        apps::UtsRunConfig rc;
        res = apps::uts_run_scioto_ft(rt, tree, rc);
      },
      seed);
  fault::stop();
  return res;
}

// ---- membership view ----

TEST(DetectView, DisarmedFallsBackToOracle) {
  ASSERT_FALSE(detect::active());
  // No fault session either: everyone is alive, epoch 0.
  EXPECT_TRUE(detect::alive(0));
  EXPECT_EQ(detect::epoch(), 0u);

  // With only the oracle armed, the view mirrors it exactly.
  fault::start(4, fault::FaultPlan{}, 7);
  EXPECT_EQ(detect::alive_count(), 4);
  fault::mark_dead(2);
  EXPECT_FALSE(detect::alive(2));
  EXPECT_EQ(detect::alive_count(), 3);
  EXPECT_EQ(detect::epoch(), fault::epoch());
  EXPECT_EQ(detect::successor(1), 3);
  fault::stop();
}

TEST(DetectView, ConfirmDeadWinsOnceAndRejoinReadmits) {
  detect::start(4);
  const std::uint64_t e0 = detect::epoch();
  // Exactly one prober wins the transition; the epoch bumps once.
  EXPECT_TRUE(detect::confirm_dead(2, /*by=*/0));
  EXPECT_FALSE(detect::confirm_dead(2, /*by=*/1));
  EXPECT_FALSE(detect::alive(2));
  EXPECT_EQ(detect::epoch(), e0 + 1);
  EXPECT_EQ(detect::successor(1), 3);
  // Rejoin re-admits and bumps again so every rank resplices.
  std::uint64_t e2 = detect::rejoin(2);
  EXPECT_EQ(e2, e0 + 2);
  EXPECT_TRUE(detect::alive(2));
  detect::Stats s = detect::stats();
  EXPECT_EQ(s.confirms, 1u);
  EXPECT_EQ(s.rejoins, 1u);
  detect::stop();
}

// ---- detector-mode kill recovery: the PR 2 headline, oracle off ----

TEST(DetectRecovery, UtsExactWithQuarterOfRanksKilledDetectorMode) {
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  DetectorGuard guard;
  apps::UtsResult res = run_uts_detector(
      8, "kill:rank=2,at=400us;kill:rank=5,at=700us", 42, tree);
  EXPECT_EQ(res.survivors, 6);
  EXPECT_TRUE(res.counts == expected)
      << "counted " << res.counts.nodes << " nodes, expected "
      << expected.nodes;
  // Both deaths were learned through probes: the detector (not the
  // oracle) confirmed them, and someone paid heartbeats/probes to do it.
  detect::Stats s = detect::stats();
  EXPECT_EQ(s.confirms, 2u);
  EXPECT_GT(s.heartbeats, 0u);
  EXPECT_GT(s.probes, 0u);
  EXPECT_GT(s.max_detect_latency, 0u);
}

TEST(DetectRecovery, UtsExactAcrossKillSchedulesDetectorMode) {
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const char* plans[] = {
      "kill:rank=3,at=20us",
      "kill:rank=1,at=40us;kill:rank=2,at=45us",
      "kill:rank=0,at=30us",  // root rank dies too
  };
  for (const char* plan : plans) {
    DetectorGuard guard;
    apps::UtsResult res = run_uts_detector(4, plan, 7, tree);
    EXPECT_TRUE(res.counts == expected)
        << "plan '" << plan << "' counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
  }
}

// ---- false suspicion: the lease fence earns its keep ----
//
// A whole-rank stall longer than confirm_after pushes a live rank past
// the detector's timeout: a survivor confirms it dead, resplices the
// tree, and adopts its queue under an (epoch, adopter) fence. When the
// rank resumes it must observe the fence, abort its loop, drain nothing
// twice, and rejoin -- the traversal total stays bit-identical to the
// no-fault run, which is the zero-double-execution proof (every re-run
// task would inflate the node count).

TEST(DetectFalseSuspicion, StallResumeExactSim8Seeds) {
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DetectorGuard guard;
    apps::UtsResult res = run_uts_detector(
        8, "stall:rank=3,at=200us,for=2ms", seed, tree);
    EXPECT_TRUE(res.counts == expected)
        << "seed " << seed << " counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
    // Nobody actually died.
    EXPECT_EQ(res.survivors, 8) << "seed " << seed;
    detect::Stats s = detect::stats();
    // The stalled rank was condemned (2ms silence >> 400us confirm) and
    // came back: exactly one rank was ever confirmed dead, and rejoins
    // match confirms -- every condemnation was a false alarm that
    // recovered, none leaked.
    EXPECT_GE(s.confirms, 1u) << "seed " << seed;
    EXPECT_EQ(s.rejoins, s.confirms) << "seed " << seed;
    EXPECT_EQ(s.fence_aborts, s.rejoins) << "seed " << seed;
  }
}

TEST(DetectFalseSuspicion, StallResumeExactThreads8Seeds) {
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  // Wall-clock timeouts sized for a loaded CI machine: generous enough
  // that scheduling noise alone rarely condemns a rank, small enough that
  // the 80ms injected stall reliably does. Safety cannot depend on the
  // tuning either way -- any falsely-condemned rank fences and rejoins.
  detect::Config tuned = detect::config();
  tuned.hb_period = us(200);
  tuned.probe_period = us(400);
  tuned.suspect_after = ms(5);
  tuned.confirm_after = ms(20);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DetectorGuard guard(&tuned);
    // Threads-backend rules trigger on safepoint-poll counts (after=),
    // not virtual time.
    apps::UtsResult res = run_uts_detector(
        4, "stall:rank=3,after=40,for=80ms", seed, tree,
        pgas::BackendKind::Threads);
    EXPECT_TRUE(res.counts == expected)
        << "seed " << seed << " counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
    EXPECT_EQ(res.survivors, 4) << "seed " << seed;
    detect::Stats s = detect::stats();
    EXPECT_EQ(s.rejoins, s.confirms) << "seed " << seed;
  }
}

// ---- detector-mode determinism + detection-latency analysis ----

TEST(DetectTrace, SamePlanAndSeedReplaysByteIdenticalTrace) {
  const apps::UtsParams tree = apps::uts_tiny();
  const std::string plan = "kill:rank=2,at=50us";
  auto traced_run = [&]() {
    DetectorGuard guard;
    trace::start(4);
    (void)run_uts_detector(4, plan, 99, tree);
    std::vector<trace::Event> evs = trace::all_events();
    trace::stop();
    return evs;
  };
  std::vector<trace::Event> a = traced_run();
  std::vector<trace::Event> b = traced_run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << "event " << i;
    EXPECT_EQ(a[i].a, b[i].a) << "event " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "event " << i;
    EXPECT_EQ(a[i].c, b[i].c) << "event " << i;
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(DetectTrace, DetectionLatencyMatchesKillToFirstConfirm) {
  const apps::UtsParams tree = apps::uts_small();
  DetectorGuard guard;
  trace::start(8);
  (void)run_uts_detector(8, "kill:rank=2,at=400us;kill:rank=5,at=700us", 42,
                         tree);
  std::vector<trace::Event> evs = trace::all_events();
  trace::stop();

  std::vector<trace::DetectionRecord> dl = trace::detection_latency(evs, 8);
  ASSERT_EQ(dl.size(), 2u);
  for (const trace::DetectionRecord& r : dl) {
    EXPECT_TRUE(r.dead == 2 || r.dead == 5);
    EXPECT_TRUE(r.was_killed);
    EXPECT_GT(r.latency(), 0);
    // Confirmation cannot beat the detector's own timeout.
    EXPECT_GE(r.latency(), detect::config().confirm_after);
    EXPECT_NE(r.confirmed_by, r.dead);
    EXPECT_GE(r.suspects, 1);
  }
  // Kills fire at the first safepoint at/after the planned time.
  EXPECT_GE(dl[0].killed_at, us(400));
  EXPECT_GE(dl[1].killed_at, us(700));
  EXPECT_FALSE(trace::detection_table(dl).render("detection").empty());
}

TEST(DetectTrace, FalseConfirmationShowsAsFalseKind) {
  const apps::UtsParams tree = apps::uts_small();
  DetectorGuard guard;
  trace::start(8);
  (void)run_uts_detector(8, "stall:rank=3,at=200us,for=2ms", 3, tree);
  std::vector<trace::Event> evs = trace::all_events();
  trace::stop();

  std::vector<trace::DetectionRecord> dl = trace::detection_latency(evs, 8);
  ASSERT_GE(dl.size(), 1u);
  EXPECT_EQ(dl[0].dead, 3);
  EXPECT_FALSE(dl[0].was_killed);
  EXPECT_EQ(dl[0].latency(), 0);
  // The owner's abort left its mark in the stream.
  bool saw_fence_abort = false;
  for (const trace::Event& e : evs) {
    saw_fence_abort = saw_fence_abort || e.kind == trace::Ev::FenceAbort;
  }
  EXPECT_TRUE(saw_fence_abort);
}

// ---- C API knobs ----

TEST(DetectCApi, KnobsRoundTripAndSelfConsistency) {
  const detect::Config before = detect::config();

  EXPECT_EQ(scioto_detector_enabled(), 0);
  scioto_detector_set(1);
  EXPECT_EQ(scioto_detector_enabled(), 1);

  // Raising the heartbeat period past the staged timeouts drags them up
  // to keep suspect > hb and confirm > suspect.
  scioto_set_hb_period_ns(us(50));
  EXPECT_EQ(scioto_hb_period_ns(), us(50));
  EXPECT_GT(scioto_suspect_timeout_ns(), us(50));

  scioto_set_suspect_timeout_ns(us(900));
  EXPECT_EQ(scioto_suspect_timeout_ns(), us(900));
  EXPECT_GT(detect::config().confirm_after, us(900));

  detect::set_config(before);
  EXPECT_EQ(scioto_detector_enabled(), before.enabled ? 1 : 0);
}

TEST(DetectCApi, StatsSurfaceAfterDetectorRun) {
  const apps::UtsParams tree = apps::uts_tiny();
  DetectorGuard guard;
  (void)run_uts_detector(4, "kill:rank=3,at=20us", 11, tree);
  scioto_detector_stats_t s;
  scioto_detector_stats_get(&s);
  EXPECT_GT(s.heartbeats, 0u);
  EXPECT_GT(s.probes, 0u);
  EXPECT_EQ(s.confirms, 1u);
  EXPECT_GT(s.max_detect_latency_ns, 0u);
}

}  // namespace
}  // namespace scioto
