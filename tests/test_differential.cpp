// Differential test battery for the adaptive steal engine: the same
// workloads run with every combination of the new steal knobs (aborting
// steals, steal-half chunking, the owner fast path, deferred steal copy)
// must produce results identical to the sequential oracle, on both the
// simulated and the real-threads backend, across many scheduler seeds.
//
// Two workloads:
//   * UTS tree traversal -- exact node/leaf/depth counts vs
//     uts_sequential();
//   * blocked matmul over Global Arrays (the paper's §4 running example)
//     -- numerical result vs a dense reference, and exactly one task
//     executed per block triple.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/uts/uts.hpp"
#include "apps/uts/uts_drivers.hpp"
#include "base/linalg.hpp"
#include "ga/global_array.hpp"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using apps::UtsCounts;
using apps::UtsParams;
using apps::UtsRunConfig;

constexpr int kRanks = 4;
constexpr int kSeeds = 8;

/// One steal-engine configuration under test.
struct Knobs {
  const char* name;
  bool aborting = false;
  bool adaptive = false;
  bool fastpath = false;
  bool deferred = false;
};

/// The {aborting on/off} x {adaptive on/off} grid the issue asks for,
/// plus an everything-on row that also exercises the owner fast path and
/// the deferred chunk copy.
constexpr Knobs kGrid[] = {
    {"baseline", false, false, false, false},
    {"aborting", true, false, false, false},
    {"adaptive", false, true, false, false},
    {"aborting+adaptive", true, true, false, false},
    {"all-on", true, true, true, true},
};

class DifferentialTest
    : public ::testing::TestWithParam<pgas::BackendKind> {};

TEST_P(DifferentialTest, UtsMatchesSequentialOracle) {
  const UtsParams tree = apps::uts_tiny();
  const UtsCounts expected = apps::uts_sequential(tree);
  ASSERT_GT(expected.nodes, 0u);

  for (const Knobs& k : kGrid) {
    for (int s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = 1000 + 77 * static_cast<std::uint64_t>(s);
      UtsCounts got;
      TcStats stats;
      testing::run(
          kRanks, GetParam(),
          [&](pgas::Runtime& rt) {
            UtsRunConfig cfg;
            cfg.chunk = 2;  // small chunks force steal traffic on a tiny tree
            cfg.aborting_steals = k.aborting;
            cfg.adaptive_steal = k.adaptive;
            cfg.owner_fastpath = k.fastpath;
            cfg.deferred_steal_copy = k.deferred;
            auto res = apps::uts_run_scioto(rt, tree, cfg);
            if (rt.me() == 0) {
              got = res.counts;
              stats = res.stats;
            }
          },
          seed);
      EXPECT_EQ(got.nodes, expected.nodes)
          << "knobs=" << k.name << " seed=" << seed;
      EXPECT_EQ(got.leaves, expected.leaves)
          << "knobs=" << k.name << " seed=" << seed;
      EXPECT_EQ(got.max_depth, expected.max_depth)
          << "knobs=" << k.name << " seed=" << seed;
      // Tasks and tree nodes are not 1:1 (a task may expand a whole
      // subtree stack); the exact-count oracle above is the correctness
      // criterion.
      EXPECT_GT(stats.tasks_executed, 0u)
          << "knobs=" << k.name << " seed=" << seed;
      if (!k.aborting) {
        EXPECT_EQ(stats.steals_lock_busy, 0u) << "knobs=" << k.name;
        EXPECT_EQ(stats.steal_retargets, 0u) << "knobs=" << k.name;
      }
      if (!k.fastpath) {
        EXPECT_EQ(stats.reacquires_fast, 0u) << "knobs=" << k.name;
      }
    }
  }
}

TEST_P(DifferentialTest, UtsBinomialMatchesSequentialOracle) {
  // A second tree shape: the binomial variant is bushier near the leaves,
  // so the shared portions stay deep and the steal-half width actually
  // varies instead of saturating at chunk_size.
  const UtsParams tree = apps::uts_binomial_small();
  const UtsCounts expected = apps::uts_sequential(tree);
  ASSERT_GT(expected.nodes, 0u);

  for (const Knobs& k : kGrid) {
    for (int s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = 9000 + 131 * static_cast<std::uint64_t>(s);
      UtsCounts got;
      testing::run(
          kRanks, GetParam(),
          [&](pgas::Runtime& rt) {
            UtsRunConfig cfg;
            cfg.chunk = 4;
            cfg.aborting_steals = k.aborting;
            cfg.adaptive_steal = k.adaptive;
            cfg.owner_fastpath = k.fastpath;
            cfg.deferred_steal_copy = k.deferred;
            auto res = apps::uts_run_scioto(rt, tree, cfg);
            if (rt.me() == 0) got = res.counts;
          },
          seed);
      EXPECT_EQ(got, expected) << "knobs=" << k.name << " seed=" << seed;
    }
  }
}

// ---- Queue-mode matrix ----

/// The three production steal protocols behind SCIOTO_QUEUE: locked
/// (the paper's blocking chunked steals), aborting (trylock + retarget),
/// and lockfree (the Chase-Lev tagged-CAS path). Same UTS workload, both
/// backends, eight scheduler seeds each: every cell must reproduce the
/// sequential oracle exactly. Lockfree stays opt-in -- the default mode
/// is untouched Split, so the fig4/fig7 trace goldens (test_trace) stay
/// byte-identical with this feature merely compiled in.
struct ModeRow {
  const char* name;
  QueueMode mode;
  bool aborting;
};

constexpr ModeRow kModes[] = {
    {"locked", QueueMode::Split, false},
    {"aborting", QueueMode::Split, true},
    {"lockfree", QueueMode::LockFree, false},
};

TEST_P(DifferentialTest, QueueModeMatrixMatchesSequentialOracle) {
  const UtsParams tree = apps::uts_tiny();
  const UtsCounts expected = apps::uts_sequential(tree);
  ASSERT_GT(expected.nodes, 0u);

  for (const ModeRow& m : kModes) {
    for (int s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = 4000 + 53 * static_cast<std::uint64_t>(s);
      UtsCounts got;
      TcStats stats;
      testing::run(
          kRanks, GetParam(),
          [&](pgas::Runtime& rt) {
            UtsRunConfig cfg;
            cfg.chunk = 2;
            cfg.queue_mode = m.mode;
            cfg.aborting_steals = m.aborting;
            auto res = apps::uts_run_scioto(rt, tree, cfg);
            if (rt.me() == 0) {
              got = res.counts;
              stats = res.stats;
            }
          },
          seed);
      EXPECT_EQ(got, expected) << "mode=" << m.name << " seed=" << seed;
      EXPECT_GT(stats.tasks_executed, 0u)
          << "mode=" << m.name << " seed=" << seed;
      if (!m.aborting) {
        // Neither pure-locked nor lockfree ever bounces off a held lock:
        // the former convoys, the latter has no lock on the steal path.
        EXPECT_EQ(stats.steals_lock_busy, 0u)
            << "mode=" << m.name << " seed=" << seed;
        EXPECT_EQ(stats.steal_retargets, 0u)
            << "mode=" << m.name << " seed=" << seed;
      }
    }
  }
}

// ---- Matmul differential ----

struct MmTask {
  std::int32_t block[3];
};

double a_val(std::int64_t i, std::int64_t j) {
  return 0.01 * static_cast<double>(i) + 0.02 * static_cast<double>(j);
}
double b_val(std::int64_t i, std::int64_t j) {
  return (i == j ? 1.0 : 0.0) + 0.001 * static_cast<double>(i + j);
}

/// Runs one blocked matmul under the given knobs and returns rank 0's view
/// of {global max error vs dense reference, tasks executed globally}.
struct MmResult {
  double max_err = 1.0;
  std::uint64_t tasks = 0;
};

MmResult run_matmul(pgas::BackendKind kind, const Knobs& k,
                    std::uint64_t seed) {
  constexpr std::int64_t nb = 4, bs = 8, n = nb * bs;
  MmResult out;
  testing::run(
      kRanks, kind,
      [&](pgas::Runtime& rt) {
        ga::GlobalArray a(rt, n, n, "A"), b(rt, n, n, "B"), c(rt, n, n, "C");
        for (std::int64_t i = a.row_lo(rt.me()); i < a.row_hi(rt.me()); ++i) {
          for (std::int64_t j = 0; j < n; ++j) {
            a.local_panel()[(i - a.row_lo(rt.me())) * n + j] = a_val(i, j);
            b.local_panel()[(i - b.row_lo(rt.me())) * n + j] = b_val(i, j);
          }
        }
        rt.barrier();

        TcConfig tcc;
        tcc.max_task_body = sizeof(MmTask);
        tcc.chunk_size = 2;
        tcc.aborting_steals = k.aborting;
        tcc.adaptive_steal = k.adaptive;
        tcc.owner_fastpath = k.fastpath;
        tcc.deferred_steal_copy = k.deferred;
        TaskCollection tc(rt, tcc);

        std::vector<double> abuf(bs * bs), bbuf(bs * bs), cbuf(bs * bs);
        TaskHandle mm = tc.register_callback([&](TaskContext& ctx) {
          const auto& t = ctx.body_as<MmTask>();
          std::int64_t i0 = t.block[0] * bs, j0 = t.block[1] * bs,
                       k0 = t.block[2] * bs;
          a.get(i0, i0 + bs, k0, k0 + bs, abuf.data(), bs);
          b.get(k0, k0 + bs, j0, j0 + bs, bbuf.data(), bs);
          matmul(abuf.data(), bbuf.data(), cbuf.data(), bs, bs, bs);
          c.acc(i0, i0 + bs, j0, j0 + bs, cbuf.data(), bs, 1.0);
        });

        Task task = tc.task_create(sizeof(MmTask), mm);
        for (std::int32_t i = 0; i < nb; ++i) {
          for (std::int32_t j = 0; j < nb; ++j) {
            for (std::int32_t kk = 0; kk < nb; ++kk) {
              if (c.owner_of_patch(i * bs, j * bs) != rt.me()) continue;
              task.body_as<MmTask>() = {{i, j, kk}};
              tc.add_local(task, kAffinityHigh);
              task.reuse();
            }
          }
        }
        tc.process();

        std::vector<double> aref(static_cast<std::size_t>(n) * n),
            bref(aref.size()), cref(aref.size());
        for (std::int64_t i = 0; i < n; ++i) {
          for (std::int64_t j = 0; j < n; ++j) {
            aref[static_cast<std::size_t>(i * n + j)] = a_val(i, j);
            bref[static_cast<std::size_t>(i * n + j)] = b_val(i, j);
          }
        }
        matmul(aref.data(), bref.data(), cref.data(), n, n, n);
        double max_err = 0;
        for (std::int64_t i = c.row_lo(rt.me()); i < c.row_hi(rt.me()); ++i) {
          for (std::int64_t j = 0; j < n; ++j) {
            double got = c.local_panel()[(i - c.row_lo(rt.me())) * n + j];
            max_err = std::max(
                max_err,
                std::abs(got - cref[static_cast<std::size_t>(i * n + j)]));
          }
        }
        double global_err = rt.allreduce_max(max_err);
        TcStats g = tc.stats_global();
        if (rt.me() == 0) {
          out.max_err = global_err;
          out.tasks = g.tasks_executed;
        }
        tc.destroy();
        c.destroy();
        b.destroy();
        a.destroy();
      },
      seed);
  return out;
}

TEST_P(DifferentialTest, MatmulMatchesDenseReference) {
  constexpr std::uint64_t kExpectedTasks = 4 * 4 * 4;
  for (const Knobs& k : kGrid) {
    for (int s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = 500 + 13 * static_cast<std::uint64_t>(s);
      MmResult r = run_matmul(GetParam(), k, seed);
      EXPECT_LT(r.max_err, 1e-9) << "knobs=" << k.name << " seed=" << seed;
      EXPECT_EQ(r.tasks, kExpectedTasks)
          << "knobs=" << k.name << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, DifferentialTest,
                         ::testing::Values(pgas::BackendKind::Sim,
                                         pgas::BackendKind::Threads),
                         [](const auto& info) {
                           return testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
