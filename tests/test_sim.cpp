// Tests for the virtual-time engine: fibers, min-clock scheduling,
// determinism, locks with queueing-delay handoff, barriers, eventcounts,
// and RMA target occupancy.
#include <gtest/gtest.h>

#include <vector>

#include "base/error.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/machine.hpp"

namespace scioto::sim {
namespace {

Engine::Config cfg(int n) {
  Engine::Config c;
  c.nranks = n;
  c.machine = test_machine();
  return c;
}

TEST(Fiber, RunsAndFinishes) {
  int calls = 0;
  Fiber f([&] { ++calls; }, 64 * 1024);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(calls, 1);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> order;
  Fiber* self = nullptr;
  Fiber f(
      [&] {
        order.push_back(1);
        self->yield();
        order.push_back(3);
      },
      64 * 1024);
  self = &f;
  f.resume();
  order.push_back(2);
  f.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Engine, ClocksAdvanceIndependently) {
  std::vector<TimeNs> final_clock(3);
  Engine e(cfg(3), [&](Rank r) {
    Engine* eng = current_engine();
    eng->charge((r + 1) * 1000);
    final_clock[static_cast<std::size_t>(r)] = eng->now();
  });
  e.run();
  EXPECT_EQ(final_clock[0], 1000);
  EXPECT_EQ(final_clock[1], 2000);
  EXPECT_EQ(final_clock[2], 3000);
  EXPECT_EQ(e.max_clock(), 3000);
}

TEST(Engine, MinClockSchedulingOrder) {
  // Each rank stamps a shared log at sync points; the interleaving must be
  // in virtual-time order.
  std::vector<std::pair<TimeNs, Rank>> log;
  Engine e(cfg(4), [&](Rank r) {
    Engine* eng = current_engine();
    for (int i = 0; i < 5; ++i) {
      eng->charge(100 + 37 * r);
      eng->sync();
      log.emplace_back(eng->now(), r);
    }
  });
  e.run();
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first)
        << "out-of-order execution at step " << i;
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    std::vector<std::pair<TimeNs, Rank>> log;
    Engine e(cfg(5), [&](Rank r) {
      Engine* eng = current_engine();
      for (int i = 0; i < 20; ++i) {
        eng->charge(50 + (r * 13 + i * 7) % 90);
        eng->sync();
        log.emplace_back(eng->now(), r);
      }
    });
    e.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, CpuScaleAppliesToCharges) {
  Engine::Config c = cfg(2);
  c.machine.cpu_scale = [](Rank r, int) { return r == 0 ? 1.0 : 2.0; };
  std::vector<TimeNs> t(2);
  Engine e(c, [&](Rank r) {
    Engine* eng = current_engine();
    eng->charge(1000);
    t[static_cast<std::size_t>(r)] = eng->now();
  });
  e.run();
  EXPECT_EQ(t[0], 1000);
  EXPECT_EQ(t[1], 2000);
}

TEST(Engine, LockHandoffModelsQueueingDelay) {
  // Rank 0 grabs the lock at t=0 and holds it until t=1000; rank 1
  // requests it at t=10 and must observe clock >= 1000 when granted.
  std::vector<TimeNs> granted(2);
  int lock_id = -1;
  Engine e(cfg(2), [&](Rank r) {
    Engine* eng = current_engine();
    if (r == 0) {
      lock_id = eng->lock_create();
      eng->lock_acquire(lock_id);
      eng->charge(1000);
      eng->sync();
      eng->lock_release(lock_id);
    } else {
      eng->charge(10);  // let rank 0 create + acquire first (t0 < t1 start)
      eng->sync();
      eng->lock_acquire(lock_id);
      granted[1] = eng->now();
      eng->lock_release(lock_id);
    }
  });
  e.run();
  EXPECT_GE(granted[1], 1000);
}

TEST(Engine, TryLockFailsWhenHeld) {
  bool second_got = true;
  int lock_id = -1;
  Engine e(cfg(2), [&](Rank r) {
    Engine* eng = current_engine();
    if (r == 0) {
      lock_id = eng->lock_create();
      eng->lock_acquire(lock_id);
      eng->charge(5000);
      eng->sync();
      eng->lock_release(lock_id);
    } else {
      eng->charge(100);
      second_got = eng->lock_try(lock_id);
    }
  });
  e.run();
  EXPECT_FALSE(second_got);
}

TEST(Engine, BarrierReleasesAtMaxArrivalPlusCost) {
  std::vector<TimeNs> after(4);
  Engine e(cfg(4), [&](Rank r) {
    Engine* eng = current_engine();
    eng->charge(100 * (r + 1));  // arrivals at 100..400
    eng->barrier(500);
    after[static_cast<std::size_t>(r)] = eng->now();
  });
  e.run();
  for (TimeNs t : after) {
    EXPECT_EQ(t, 900);  // max arrival 400 + cost 500
  }
}

TEST(Engine, RepeatedBarriers) {
  int rounds = 0;
  Engine e(cfg(3), [&](Rank r) {
    Engine* eng = current_engine();
    for (int i = 0; i < 10; ++i) {
      eng->charge(10 * (r + 1));
      eng->barrier(100);
      if (r == 0) ++rounds;
    }
  });
  e.run();
  EXPECT_EQ(rounds, 10);
}

TEST(Engine, EventcountWakesBlockedRank) {
  TimeNs woke_at = 0;
  Engine e(cfg(2), [&](Rank r) {
    Engine* eng = current_engine();
    if (r == 0) {
      eng->idle_wait();
      woke_at = eng->now();
    } else {
      eng->charge(700);
      eng->notify(0, eng->now() + 50);
    }
  });
  e.run();
  EXPECT_EQ(woke_at, 750);
}

TEST(Engine, EventcountPendingConsumedWithoutBlocking) {
  bool done = false;
  Engine e(cfg(2), [&](Rank r) {
    Engine* eng = current_engine();
    if (r == 1) {
      eng->notify(0, 0);
    } else {
      eng->charge(500);  // notify lands before we wait
      eng->sync();
      eng->idle_wait();  // must not deadlock
      done = true;
    }
  });
  e.run();
  EXPECT_TRUE(done);
}

TEST(Engine, RmaOccupySerializesPerTarget) {
  // Two ranks fire RMAs at target rank 0 at the same virtual time; the
  // second to be serviced must queue behind the first.
  std::vector<TimeNs> done(3);
  Engine e(cfg(3), [&](Rank r) {
    Engine* eng = current_engine();
    if (r == 0) return;
    eng->sync();
    done[static_cast<std::size_t>(r)] =
        eng->rma_occupy(/*target=*/0, /*arrival_offset=*/100,
                        /*service=*/1000);
  });
  e.run();
  TimeNs first = std::min(done[1], done[2]);
  TimeNs second = std::max(done[1], done[2]);
  EXPECT_EQ(first, 1100);
  EXPECT_EQ(second, 2100);
}

TEST(Engine, SyncQuantumBoundsRunAhead) {
  // With a tiny quantum, charge() must yield frequently: interleavings of
  // two equal-speed ranks stay within one quantum of each other.
  Engine::Config c = cfg(2);
  c.machine.sync_quantum = 100;
  TimeNs max_skew = 0;
  Engine e(c, [&](Rank r) {
    Engine* eng = current_engine();
    for (int i = 0; i < 50; ++i) {
      eng->charge(30);
      TimeNs other = eng->now(1 - r);
      max_skew = std::max(max_skew, eng->now() - other);
    }
  });
  e.run();
  // A rank can be ahead at most ~quantum + one charge.
  EXPECT_LE(max_skew, 200);
}

TEST(Engine, DeadlockDetectionAborts) {
  EXPECT_DEATH(
      {
        Engine e(cfg(2), [&](Rank) { current_engine()->idle_wait(); });
        e.run();
      },
      "deadlock");
}

TEST(Machine, PresetsResolveByName) {
  EXPECT_EQ(machine_by_name("cluster").name, "cluster2008");
  EXPECT_EQ(machine_by_name("xt4").name, "cray-xt4");
  EXPECT_EQ(machine_by_name("test").name, "test");
  EXPECT_THROW(machine_by_name("nonesuch"), ::scioto::Error);
}

TEST(Machine, HeterogeneousClusterIsHalfAndHalf) {
  MachineModel m = machine_by_name("cluster");
  EXPECT_DOUBLE_EQ(m.cpu_scale(0, 64), 1.0);
  EXPECT_DOUBLE_EQ(m.cpu_scale(31, 64), 1.0);
  // Xeon nodes are 0.4753us / 0.3158us = 1.505x slower per UTS node (§6.3).
  EXPECT_NEAR(m.cpu_scale(32, 64), 1.505, 1e-9);
  EXPECT_NEAR(m.cpu_scale(63, 64), 1.505, 1e-9);
}

TEST(Machine, TransferTimeUsesBandwidth) {
  MachineModel m;
  m.bytes_per_ns = 2.0;
  EXPECT_EQ(m.transfer_time(2000), 1000);
}

}  // namespace
}  // namespace scioto::sim
