// Tests for the global-view telemetry plane (src/metrics): the log2-bucket
// percentile helpers it shares with the trace analyses, the seqlock
// scrape protocol under concurrent writers, the zero-cost-off guarantee
// (metrics-off traces identical to baseline), metrics-on sim determinism,
// the three-way reconciliation metrics == TcStats == trace on a fixed-seed
// UTS run over both backends, and the C API surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "base/stats.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "scioto/scioto_c.h"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

using namespace scioto;
using namespace scioto::testing;

// ---- Percentile helpers (shared by metrics and trace/analysis) ----

TEST(Stats, PercentileRankExactBoundaries) {
  // Nearest rank: smallest 1-based k with k/n >= p/100.
  EXPECT_EQ(stats::percentile_rank(50, 10), 5u);
  EXPECT_EQ(stats::percentile_rank(50.1, 10), 6u);  // 5/10 < 0.501
  EXPECT_EQ(stats::percentile_rank(95, 100), 95u);
  EXPECT_EQ(stats::percentile_rank(95, 20), 19u);
  EXPECT_EQ(stats::percentile_rank(99, 100), 99u);
  EXPECT_EQ(stats::percentile_rank(100, 7), 7u);
  EXPECT_EQ(stats::percentile_rank(0, 7), 1u);    // clamped to first sample
  EXPECT_EQ(stats::percentile_rank(-5, 7), 1u);   // p clamp low
  EXPECT_EQ(stats::percentile_rank(200, 7), 7u);  // p clamp high
  EXPECT_EQ(stats::percentile_rank(50, 1), 1u);
  EXPECT_EQ(stats::percentile_rank(50, 0), 0u);   // empty population
}

TEST(Stats, Log2BucketExactBoundaries) {
  // Bucket b holds values of bit width b: 0 -> 0, [2^(b-1), 2^b - 1] -> b.
  EXPECT_EQ(stats::log2_bucket(0), 0);
  EXPECT_EQ(stats::log2_bucket(1), 1);
  EXPECT_EQ(stats::log2_bucket(2), 2);
  EXPECT_EQ(stats::log2_bucket(3), 2);
  EXPECT_EQ(stats::log2_bucket(4), 3);
  EXPECT_EQ(stats::log2_bucket(1023), 10);
  EXPECT_EQ(stats::log2_bucket(1024), 11);
  // Clamp: anything at or past the last bucket lands in it.
  EXPECT_EQ(stats::log2_bucket(~std::uint64_t{0}, 8), 7);
  EXPECT_EQ(stats::log2_bucket(1u << 20, 8), 7);
  // Floor/ceil round-trip the bucket edges.
  EXPECT_EQ(stats::log2_bucket_floor(0), 0u);
  EXPECT_EQ(stats::log2_bucket_ceil(0), 0u);
  EXPECT_EQ(stats::log2_bucket_floor(5), 16u);
  EXPECT_EQ(stats::log2_bucket_ceil(5), 31u);
  for (int b = 1; b < 20; ++b) {
    EXPECT_EQ(stats::log2_bucket(stats::log2_bucket_floor(b)), b);
    EXPECT_EQ(stats::log2_bucket(stats::log2_bucket_ceil(b)), b);
  }
}

TEST(Stats, HistPercentileExactBoundaries) {
  std::uint64_t counts[stats::kLog2Buckets] = {};
  EXPECT_EQ(stats::hist_percentile(counts, stats::kLog2Buckets, 50), 0u);

  // 10 samples in bucket 3 ([4,7]), 10 in bucket 6 ([32,63]): p50 must be
  // the ceiling of bucket 3 (rank 10 is the last sample of bucket 3) and
  // p50.1 the ceiling of bucket 6 (rank 11).
  counts[3] = 10;
  counts[6] = 10;
  EXPECT_EQ(stats::hist_percentile(counts, stats::kLog2Buckets, 50), 7u);
  EXPECT_EQ(stats::hist_percentile(counts, stats::kLog2Buckets, 50.1), 63u);
  EXPECT_EQ(stats::hist_percentile(counts, stats::kLog2Buckets, 100), 63u);
  EXPECT_EQ(stats::hist_percentile(counts, stats::kLog2Buckets, 0), 7u);

  // 99 samples at bucket 1, one at bucket 10: p99 stays in bucket 1 and
  // anything above it crosses over.
  std::uint64_t skew[stats::kLog2Buckets] = {};
  skew[1] = 99;
  skew[10] = 1;
  EXPECT_EQ(stats::hist_percentile(skew, stats::kLog2Buckets, 99), 1u);
  EXPECT_EQ(stats::hist_percentile(skew, stats::kLog2Buckets, 99.5), 1023u);
}

#if SCIOTO_METRICS_ENABLED

namespace {

/// Caller-owned metrics session for one scope.
struct MetricsSession {
  explicit MetricsSession(int nranks) { metrics::start(nranks); }
  ~MetricsSession() { metrics::stop(); }
};

/// Scrapes every rank of the active session.
std::vector<metrics::Snapshot> scrape_all(int nranks) {
  std::vector<metrics::Snapshot> out(nranks);
  for (Rank r = 0; r < nranks; ++r) {
    EXPECT_TRUE(metrics::scrape(r, &out[r])) << "rank " << r;
  }
  return out;
}

std::uint64_t fleet_ctr(const std::vector<metrics::Snapshot>& snaps,
                        metrics::Ctr c) {
  std::uint64_t sum = 0;
  for (const auto& s : snaps) sum += s.ctr(c);
  return sum;
}

/// A small deterministic binary-tree task workload.
void tree_workload(pgas::Runtime& rt, int depth) {
  struct Node {
    int depth;
  };
  TcConfig tcc;
  tcc.chunk_size = 2;
  TaskCollection tc(rt, tcc);
  TaskHandle h = tc.register_callback([](TaskContext& ctx) {
    ctx.tc.runtime().charge(2000);
    int d = ctx.body_as<Node>().depth;
    if (d > 0) {
      Task child = ctx.tc.task_create(sizeof(Node), ctx.header.callback);
      child.body_as<Node>().depth = d - 1;
      ctx.tc.add_local(child);
      ctx.tc.add_local(child);
    }
  });
  if (rt.me() == 0) {
    Task root = tc.task_create(sizeof(Node), h);
    root.body_as<Node>().depth = depth;
    tc.add_local(root);
  }
  tc.process();
  tc.destroy();
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

// ---- Seqlock: tear-free snapshots under a concurrent writer ----

TEST(MetricsSeqlock, TearFreeUnderConcurrentWriter) {
  MetricsSession sess(2);
  std::atomic<bool> stop{false};

  // Owner thread for rank 0: every hist_record bumps count, sum, max, and
  // one bucket inside a single seqlock critical section, so in any valid
  // snapshot count == sum == buckets[1] (all recorded values are 1). The
  // paired counters move one seqlock section apart, so their difference
  // can be at most 1 and both must be monotone across snapshots. Writes
  // come in bursts with short gaps -- a writer that NEVER pauses starves
  // the scraper by design (seqlock readers retry, owners never wait),
  // and real owners run task bodies between metric updates.
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int burst = 0; burst < 32; ++burst) {
        metrics::counter_add(0, metrics::Ctr::QPushes, 1);
        metrics::counter_add(0, metrics::Ctr::QPops, 1);
        metrics::hist_record(0, metrics::Hist::PushNs, 1);
        metrics::gauge_set(0, metrics::Gauge::QueueDepth, 7);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  });

  std::uint64_t prev_pushes = 0, prev_count = 0;
  int validated = 0;
  for (int i = 0; i < 5000; ++i) {
    metrics::Snapshot s;
    ASSERT_TRUE(metrics::scrape(0, &s));
    EXPECT_EQ(s.seq % 2, 0u);
    const metrics::HistSnap& h = s.hist(metrics::Hist::PushNs);
    ASSERT_EQ(h.count, h.sum) << "torn histogram snapshot";
    ASSERT_EQ(h.count, h.buckets[1]) << "torn histogram snapshot";
    ASSERT_EQ(h.max, h.count ? 1u : 0u);
    std::uint64_t pushes = s.ctr(metrics::Ctr::QPushes);
    std::uint64_t pops = s.ctr(metrics::Ctr::QPops);
    ASSERT_GE(pushes, pops);
    ASSERT_LE(pushes - pops, 1u);
    ASSERT_GE(pushes, prev_pushes) << "counter went backwards";
    ASSERT_GE(h.count, prev_count);
    if (s.gauge(metrics::Gauge::QueueDepth) != 0) {
      EXPECT_EQ(s.gauge(metrics::Gauge::QueueDepth), 7u);
    }
    prev_pushes = pushes;
    prev_count = h.count;
    ++validated;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(validated, 5000);
}

// ---- Zero-cost-off: metrics-off traces identical to metrics-on ----

TEST(MetricsOff, TraceIdenticalWithAndWithoutSession) {
  auto traced_run = [&](bool with_metrics) {
    trace::start(4);
    if (with_metrics) metrics::start(4);
    run_sim(4, [&](pgas::Runtime& rt) { tree_workload(rt, 9); });
    if (with_metrics) metrics::stop();
    std::vector<trace::Event> evs = trace::all_events();
    trace::stop();
    return evs;
  };
  std::vector<trace::Event> off = traced_run(false);
  std::vector<trace::Event> on = traced_run(true);
  ASSERT_FALSE(off.empty());
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].t, on[i].t) << "event " << i;
    ASSERT_EQ(off[i].c, on[i].c) << "event " << i;
    ASSERT_EQ(off[i].a, on[i].a) << "event " << i;
    ASSERT_EQ(off[i].b, on[i].b) << "event " << i;
    ASSERT_EQ(off[i].rank, on[i].rank) << "event " << i;
    ASSERT_EQ(off[i].kind, on[i].kind) << "event " << i;
  }
}

// ---- Metrics-on sim runs are bit-deterministic ----

TEST(MetricsOn, SimDeterministicAcrossRepeats) {
  auto one_run = [&](const std::string& jsonl) {
    metrics::start(4);
    metrics::MonitorOptions mopts;
    mopts.period = 50'000;
    mopts.out_path = jsonl;
    metrics::monitor_start(4, mopts);
    run_sim(4, [&](pgas::Runtime& rt) { tree_workload(rt, 9); });
    std::vector<metrics::Snapshot> snaps = scrape_all(4);
    metrics::monitor_stop();
    metrics::stop();
    return snaps;
  };
  const std::string out_a = ::testing::TempDir() + "scioto_metrics_a.jsonl";
  const std::string out_b = ::testing::TempDir() + "scioto_metrics_b.jsonl";
  std::vector<metrics::Snapshot> a = one_run(out_a);
  std::vector<metrics::Snapshot> b = one_run(out_b);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (int c = 0; c < metrics::kNumCtrs; ++c) {
      EXPECT_EQ(a[r].counters[c], b[r].counters[c])
          << "rank " << r << " ctr " << metrics::ctr_name(metrics::Ctr(c));
    }
    for (int g = 0; g < metrics::kNumGauges; ++g) {
      EXPECT_EQ(a[r].gauges[g], b[r].gauges[g])
          << "rank " << r << " gauge "
          << metrics::gauge_name(metrics::Gauge(g));
    }
    for (int h = 0; h < metrics::kNumHists; ++h) {
      EXPECT_EQ(a[r].hists[h].count, b[r].hists[h].count);
      EXPECT_EQ(a[r].hists[h].sum, b[r].hists[h].sum);
      EXPECT_EQ(a[r].hists[h].max, b[r].hists[h].max);
    }
  }
  // The monitor's JSONL stream (virtual-time sampled) must replay
  // byte-for-byte too.
  std::string ja = slurp(out_a), jb = slurp(out_b);
  EXPECT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb);
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());
}

// ---- Three-way reconciliation: metrics == TcStats == trace ----

class MetricsReconcile
    : public ::testing::TestWithParam<pgas::BackendKind> {};

TEST_P(MetricsReconcile, UtsCountersAgreeWithTcStatsAndTrace) {
  const int nranks = 4;
  apps::UtsParams tree = apps::uts_tiny();
  apps::UtsRunConfig rc;
  rc.chunk = 2;

  trace::start(nranks);
  metrics::start(nranks);
  apps::UtsResult res;
  run(nranks, GetParam(), [&](pgas::Runtime& rt) {
    apps::UtsResult r = apps::uts_run_scioto(rt, tree, rc);
    if (rt.me() == 0) res = r;
  });
  std::vector<metrics::Snapshot> snaps = scrape_all(nranks);
  metrics::stop();
  std::vector<trace::Event> evs = trace::all_events();
  trace::stop();

  // Metrics counters vs the scheduler's own TcStats: the increments sit at
  // the same sites, so the totals must agree exactly on both backends.
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::TasksExecuted),
            res.stats.tasks_executed);
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::Steals), res.stats.steals);
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::StealAttempts),
            res.stats.steal_attempts);
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::TasksStolen),
            res.stats.tasks_stolen);
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::QReleases), res.stats.releases);
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::TasksSpawned),
            res.stats.tasks_spawned_local + res.stats.tasks_spawned_remote);

  // ... and vs the trace stream's independent record of the same run.
  std::uint64_t trace_exec = 0;
  for (const trace::Event& e : evs) {
    if (e.kind == trace::Ev::TaskEnd) ++trace_exec;
  }
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::TasksExecuted), trace_exec);
  trace::StealMatrix sm = trace::steal_matrix(evs, nranks);
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::Steals), sm.total_steals());
  EXPECT_EQ(fleet_ctr(snaps, metrics::Ctr::TasksStolen), sm.total_tasks());

  // Every executed task fed the exec-time histogram.
  std::uint64_t hist_exec = 0;
  for (const auto& s : snaps) {
    hist_exec += s.hist(metrics::Hist::TaskExecNs).count;
  }
  EXPECT_EQ(hist_exec, res.stats.tasks_executed);
}

INSTANTIATE_TEST_SUITE_P(Backends, MetricsReconcile,
                         ::testing::Values(pgas::BackendKind::Sim,
                                           pgas::BackendKind::Threads),
                         [](const auto& info) {
                           return backend_name(info.param);
                         });

// ---- Monitor aggregates ----

TEST(Monitor, ImbalanceIndices) {
  EXPECT_DOUBLE_EQ(metrics::cov_index({}), 0.0);
  EXPECT_DOUBLE_EQ(metrics::cov_index({5, 5, 5, 5}), 0.0);
  EXPECT_GT(metrics::cov_index({0, 0, 0, 40}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::gini_index({7, 7, 7, 7}), 0.0);
  EXPECT_DOUBLE_EQ(metrics::gini_index({0, 0, 0, 0}), 0.0);
  // One rank holds everything: Gini -> (n-1)/n.
  EXPECT_NEAR(metrics::gini_index({0, 0, 0, 100}), 0.75, 1e-9);
}

TEST(Monitor, SampleScrapesAndAggregates) {
  MetricsSession sess(3);
  metrics::gauge_set(0, metrics::Gauge::QueueDepth, 10);
  metrics::gauge_set(1, metrics::Gauge::QueueDepth, 10);
  metrics::gauge_set(2, metrics::Gauge::QueueDepth, 10);
  metrics::counter_add(0, metrics::Ctr::TasksExecuted, 5);
  metrics::counter_add(1, metrics::Ctr::StealAttempts, 4);
  metrics::counter_add(1, metrics::Ctr::Steals, 2);

  metrics::MonitorOptions mopts;
  metrics::monitor_start(3, mopts);
  EXPECT_EQ(metrics::monitor_sample(12345), 3);
  metrics::monitor_stop();

  ASSERT_EQ(metrics::monitor_samples().size(), 1u);
  const metrics::FleetSample& s = metrics::monitor_samples()[0];
  EXPECT_EQ(s.t, 12345);
  EXPECT_EQ(s.alive, 3);
  EXPECT_EQ(s.depth_sum, 30u);
  EXPECT_EQ(s.executed, 5u);
  EXPECT_DOUBLE_EQ(s.cov, 0.0);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
  EXPECT_DOUBLE_EQ(s.steal_success, 0.5);
}

// ---- read_metric + Prometheus exposition ----

TEST(MetricsRead, NamesAndHistSuffixes) {
  MetricsSession sess(2);
  metrics::counter_add(0, metrics::Ctr::TasksExecuted, 42);
  metrics::gauge_set(0, metrics::Gauge::QueueDepth, 9);
  for (int i = 0; i < 100; ++i) {
    metrics::hist_record(0, metrics::Hist::StealNs, 100);  // bucket 7
  }
  metrics::hist_record(0, metrics::Hist::StealNs, 5000);  // bucket 13

  metrics::Snapshot s;
  ASSERT_TRUE(metrics::scrape(0, &s));
  std::uint64_t v = 0;
  EXPECT_TRUE(metrics::read_metric(s, "tasks_executed", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(metrics::read_metric(s, "queue_depth", &v));
  EXPECT_EQ(v, 9u);
  EXPECT_TRUE(metrics::read_metric(s, "steal_ns_count", &v));
  EXPECT_EQ(v, 101u);
  EXPECT_TRUE(metrics::read_metric(s, "steal_ns_sum", &v));
  EXPECT_EQ(v, 15000u);
  EXPECT_TRUE(metrics::read_metric(s, "steal_ns_max", &v));
  EXPECT_EQ(v, 5000u);
  EXPECT_TRUE(metrics::read_metric(s, "steal_ns_mean", &v));
  EXPECT_EQ(v, 15000u / 101u);
  EXPECT_TRUE(metrics::read_metric(s, "steal_ns_p50", &v));
  EXPECT_EQ(v, 127u);  // ceiling of bucket 7
  EXPECT_TRUE(metrics::read_metric(s, "steal_ns_p99", &v));
  EXPECT_EQ(v, 127u);  // rank 100 of 101 still in bucket 7
  EXPECT_TRUE(metrics::read_metric(s, "steal_ns_p95", &v));
  EXPECT_EQ(v, 127u);
  EXPECT_FALSE(metrics::read_metric(s, "no_such_metric", &v));
  EXPECT_FALSE(metrics::read_metric(s, "steal_ns_p101x", &v));

  std::string prom = metrics::prometheus_text();
  EXPECT_NE(prom.find("scioto_tasks_executed{rank=\"0\"} 42"),
            std::string::npos);
  EXPECT_NE(prom.find("scioto_queue_depth{rank=\"0\"} 9"),
            std::string::npos);
  EXPECT_NE(prom.find("scioto_steal_ns_count{rank=\"0\"} 101"),
            std::string::npos);
}

// ---- C API ----

TEST(MetricsCApi, KnobRoundTrip) {
  EXPECT_EQ(scioto_metrics_enabled(), 0);
  scioto_metrics_set(1);
  EXPECT_NE(scioto_metrics_enabled(), 0);
  scioto_metrics_set(0);
  EXPECT_EQ(scioto_metrics_enabled(), 0);

  int64_t period = scioto_metrics_period_ns();
  EXPECT_GT(period, 0);
  scioto_set_metrics_period_ns(250'000);
  EXPECT_EQ(scioto_metrics_period_ns(), 250'000);
  scioto_set_metrics_period_ns(period);
  EXPECT_EQ(scioto_metrics_period_ns(), period);
}

TEST(MetricsCApi, SnapshotAndRead) {
  // No session: everything reports unavailable.
  EXPECT_EQ(scioto_metrics_snapshot(0), nullptr);
  uint64_t v = 0;
  EXPECT_EQ(scioto_metrics_read_rank(0, "tasks_executed", &v), -1);
  scioto_metrics_snapshot_free(nullptr);  // must be a safe no-op

  MetricsSession sess(2);
  metrics::counter_add(1, metrics::Ctr::TasksExecuted, 17);
  metrics::hist_record(1, metrics::Hist::TaskExecNs, 300);

  scioto_metrics_snapshot_t* s = scioto_metrics_snapshot(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(scioto_metrics_read(s, "tasks_executed", &v), 0);
  EXPECT_EQ(v, 17u);
  EXPECT_EQ(scioto_metrics_read(s, "task_exec_ns_count", &v), 0);
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(scioto_metrics_read(s, "bogus", &v), -1);
  EXPECT_EQ(scioto_metrics_read(nullptr, "tasks_executed", &v), -1);
  scioto_metrics_snapshot_free(s);

  EXPECT_EQ(scioto_metrics_snapshot(-1), nullptr);
  EXPECT_EQ(scioto_metrics_snapshot(2), nullptr);
  EXPECT_EQ(scioto_metrics_read_rank(1, "tasks_executed", &v), 0);
  EXPECT_EQ(v, 17u);
}

#else  // !SCIOTO_METRICS_ENABLED

TEST(Metrics, CompiledOut) {
  GTEST_SKIP() << "built with SCIOTO_METRICS=OFF; only the shared stats "
                  "helpers are testable";
}

#endif  // SCIOTO_METRICS_ENABLED
