// UTS correctness tests: the deterministic tree itself, plus exact
// agreement between the sequential reference, the Scioto driver (split and
// no-split), and the MPI-WS baseline.
#include <gtest/gtest.h>

#include <set>

#include "apps/uts/uts_drivers.hpp"
#include "test_util.hpp"

namespace scioto::apps {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

TEST(Uts, RootAndChildrenAreDeterministic) {
  UtsParams p = uts_tiny();
  UtsNode root1 = uts_root(p);
  UtsNode root2 = uts_root(p);
  EXPECT_EQ(root1.state, root2.state);
  EXPECT_EQ(root1.depth, 0);

  UtsNode c0 = uts_child(root1, 0);
  UtsNode c1 = uts_child(root1, 1);
  EXPECT_NE(c0.state, c1.state);
  EXPECT_EQ(c0.depth, 1);
  EXPECT_EQ(uts_child(root1, 0).state, c0.state);
}

TEST(Uts, DifferentSeedsGiveDifferentTrees) {
  UtsParams a = uts_tiny();
  UtsParams b = uts_tiny();
  b.seed = 20;
  EXPECT_NE(uts_sequential(a).nodes, uts_sequential(b).nodes);
}

TEST(Uts, RandIs31Bit) {
  UtsParams p = uts_tiny();
  UtsNode n = uts_root(p);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(uts_rand(n), 0x80000000u);
    n = uts_child(n, 0);
  }
}

TEST(Uts, GeometricDepthBounded) {
  UtsParams p = uts_tiny();
  UtsCounts c = uts_sequential(p);
  EXPECT_LE(c.max_depth, p.gen_mx);
  EXPECT_GT(c.nodes, 100u);  // nontrivial tree
  EXPECT_GT(c.leaves, 0u);
  EXPECT_LT(c.leaves, c.nodes);
}

TEST(Uts, SequentialIsReproducible) {
  UtsParams p = uts_small();
  UtsCounts a = uts_sequential(p);
  UtsCounts b = uts_sequential(p);
  EXPECT_EQ(a, b);
}

TEST(Uts, ShapeFunctionsProduceDistinctFiniteTrees) {
  UtsParams p = uts_tiny();
  std::set<std::uint64_t> sizes;
  for (GeoShape s : {GeoShape::Linear, GeoShape::Expdec, GeoShape::Cyclic,
                     GeoShape::Fixed}) {
    p.shape = s;
    // Fixed shape at b0=4 is supercritical; shrink it to stay finite-fast.
    p.b0 = s == GeoShape::Fixed ? 1.8 : 4.0;
    UtsCounts c = uts_sequential(p);
    EXPECT_GT(c.nodes, 1u) << "shape " << static_cast<int>(s);
    EXPECT_LE(c.max_depth, p.gen_mx);
    // Determinism per shape.
    EXPECT_EQ(uts_sequential(p).nodes, c.nodes);
    sizes.insert(c.nodes);
  }
  // The shapes genuinely differ.
  EXPECT_GE(sizes.size(), 3u);
}

TEST(Uts, ExpdecShapeParallelParity) {
  UtsParams p = uts_tiny();
  p.shape = GeoShape::Expdec;
  p.gen_mx = 9;
  UtsCounts expected = uts_sequential(p);
  UtsResult res;
  testing::run_sim(5, [&](Runtime& rt) {
    UtsRunConfig cfg;
    cfg.node_cost = ns(50);
    res = uts_run_scioto(rt, p, cfg);
  });
  EXPECT_EQ(res.counts, expected);
}

TEST(Uts, BinomialTreeTerminates) {
  UtsParams p = uts_binomial_small();
  UtsCounts c = uts_sequential(p);
  EXPECT_GT(c.nodes, static_cast<std::uint64_t>(p.b0));
  // Binomial trees are deeper than geometric ones of similar size.
  EXPECT_GT(c.max_depth, 10);
}

class UtsParallel : public ::testing::TestWithParam<
                        std::tuple<BackendKind, int>> {};

TEST_P(UtsParallel, SciotoMatchesSequential) {
  auto [kind, nranks] = GetParam();
  UtsParams tree = uts_tiny();
  UtsCounts expected = uts_sequential(tree);
  UtsResult res;
  testing::run(nranks, kind, [&](Runtime& rt) {
    UtsRunConfig cfg;
    cfg.node_cost = ns(50);
    res = uts_run_scioto(rt, tree, cfg);
  });
  EXPECT_EQ(res.counts, expected);
  EXPECT_GT(res.mnodes_per_sec, 0.0);
}

TEST_P(UtsParallel, NoSplitMatchesSequential) {
  auto [kind, nranks] = GetParam();
  UtsParams tree = uts_tiny();
  UtsCounts expected = uts_sequential(tree);
  UtsResult res;
  testing::run(nranks, kind, [&](Runtime& rt) {
    UtsRunConfig cfg;
    cfg.node_cost = ns(50);
    cfg.queue_mode = QueueMode::NoSplit;
    res = uts_run_scioto(rt, tree, cfg);
  });
  EXPECT_EQ(res.counts, expected);
}

TEST_P(UtsParallel, MpiWsMatchesSequential) {
  auto [kind, nranks] = GetParam();
  UtsParams tree = uts_tiny();
  UtsCounts expected = uts_sequential(tree);
  UtsResult res;
  testing::run(nranks, kind, [&](Runtime& rt) {
    UtsRunConfig cfg;
    cfg.node_cost = ns(50);
    res = uts_run_mpi_ws(rt, tree, cfg);
  });
  EXPECT_EQ(res.counts, expected);
}

TEST_P(UtsParallel, BinomialSciotoMatchesSequential) {
  auto [kind, nranks] = GetParam();
  UtsParams tree = uts_binomial_small();
  UtsCounts expected = uts_sequential(tree);
  UtsResult res;
  testing::run(nranks, kind, [&](Runtime& rt) {
    UtsRunConfig cfg;
    cfg.node_cost = ns(50);
    res = uts_run_scioto(rt, tree, cfg);
  });
  EXPECT_EQ(res.counts, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UtsParallel,
    ::testing::Combine(::testing::Values(BackendKind::Sim,
                                         BackendKind::Threads),
                       ::testing::Values(1, 3, 8)),
    [](const auto& info) {
      return scioto::testing::backend_name(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(UtsSim, NoSplitTwoRankLivelockRegression) {
  // Regression: with no-split queues at 2 ranks, every requeued stolen
  // task is instantly stealable and the two ranks can bounce a chunk
  // forever unless the thief executes the first stolen task directly.
  // This exact configuration (geometric b0=4 depth 7, seed 19) used to
  // livelock; the ctest timeout is the failure detector.
  UtsParams tree;
  tree.tree = UtsTree::Geometric;
  tree.seed = 19;
  tree.b0 = 4.0;
  tree.gen_mx = 7;
  UtsCounts expected = uts_sequential(tree);
  UtsResult res;
  testing::run_sim(2, [&](Runtime& rt) {
    UtsRunConfig cfg;
    cfg.queue_mode = QueueMode::NoSplit;
    res = uts_run_scioto(rt, tree, cfg);
  });
  EXPECT_EQ(res.counts, expected);
}

TEST(UtsSim, VirtualSpeedupIsReal) {
  // The whole point: more simulated ranks process the tree faster in
  // virtual time.
  UtsParams tree = uts_small();
  auto elapsed_for = [&](int n) {
    UtsResult res;
    testing::run_sim(n, [&](Runtime& rt) {
      UtsRunConfig cfg;
      cfg.node_cost = ns(316);
      res = uts_run_scioto(rt, tree, cfg);
    });
    return res;
  };
  UtsResult r1 = elapsed_for(1);
  UtsResult r8 = elapsed_for(8);
  EXPECT_EQ(r1.counts, r8.counts);
  double speedup = static_cast<double>(r1.elapsed) /
                   static_cast<double>(r8.elapsed);
  EXPECT_GT(speedup, 3.0) << "8 ranks should be >3x faster than 1";
  EXPECT_GT(r8.steals, 0u);
}

TEST(UtsSim, DeterministicAcrossRuns) {
  UtsParams tree = uts_tiny();
  auto once = [&] {
    UtsResult res;
    testing::run_sim(4, [&](Runtime& rt) {
      res = uts_run_scioto(rt, tree, UtsRunConfig{});
    });
    return res;
  };
  UtsResult a = once();
  UtsResult b = once();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.steals, b.steals);
}

}  // namespace
}  // namespace scioto::apps
