// Tests for initial task-placement strategies (§8 extension).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "scioto/placement.hpp"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

TEST(Placement, RoundRobinCyclesRanks) {
  auto p = round_robin_placement();
  for (std::int64_t i = 0; i < 20; ++i) {
    Placement pl = p(i, 20, 4);
    EXPECT_EQ(pl.rank, i % 4);
    EXPECT_EQ(pl.affinity, kAffinityHigh);
  }
}

TEST(Placement, BlockedAssignsContiguousSlabs) {
  auto p = blocked_placement();
  std::vector<int> counts(4, 0);
  Rank prev = 0;
  for (std::int64_t i = 0; i < 100; ++i) {
    Placement pl = p(i, 100, 4);
    EXPECT_GE(pl.rank, prev);  // monotone -> contiguous slabs
    prev = pl.rank;
    counts[static_cast<std::size_t>(pl.rank)]++;
  }
  for (int c : counts) {
    EXPECT_EQ(c, 25);
  }
}

TEST(Placement, RandomIsDeterministicInSeedAndCoversRanks) {
  auto a = random_placement(7);
  auto b = random_placement(7);
  std::vector<int> counts(8, 0);
  for (std::int64_t i = 0; i < 400; ++i) {
    Placement pa = a(i, 400, 8);
    Placement pb = b(i, 400, 8);
    EXPECT_EQ(pa.rank, pb.rank);
    EXPECT_EQ(pa.affinity, kAffinityLow);
    counts[static_cast<std::size_t>(pa.rank)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 10);  // all ranks hit
  }
}

TEST(Placement, OwnerFollowsCallback) {
  auto p = owner_placement([](std::int64_t i) {
    return static_cast<Rank>((i * i) % 3);
  });
  EXPECT_EQ(p(5, 100, 3).rank, 25 % 3);
  EXPECT_EQ(p(5, 100, 3).affinity, kAffinityHigh);
}

class PlacementBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(PlacementBackends, SeedingThroughStrategiesExecutesEverything) {
  constexpr std::int64_t kTasks = 120;
  for (int strategy = 0; strategy < 3; ++strategy) {
    std::atomic<std::int64_t> executed{0};
    testing::run(4, GetParam(), [&](Runtime& rt) {
      TaskCollection tc(rt);
      TaskHandle h =
          tc.register_callback([&](TaskContext&) { executed.fetch_add(1); });
      PlacementFn place = strategy == 0   ? round_robin_placement()
                          : strategy == 1 ? blocked_placement()
                                          : random_placement(11);
      Task t = tc.task_create(0, h);
      // Rank 0 seeds everything through the strategy (remote adds move
      // descriptors one-sided).
      if (rt.me() == 0) {
        for (std::int64_t i = 0; i < kTasks; ++i) {
          Placement pl = place(i, kTasks, rt.nprocs());
          tc.add(pl.rank, pl.affinity, t);
        }
      }
      tc.process();
      tc.destroy();
    });
    EXPECT_EQ(executed.load(), kTasks) << "strategy " << strategy;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PlacementBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return scioto::testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
