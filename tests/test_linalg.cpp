// Tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/linalg.hpp"
#include "base/rng.hpp"

namespace scioto {
namespace {

TEST(Linalg, MatmulSmallKnown) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  double a[] = {1, 2, 3, 4};
  double b[] = {5, 6, 7, 8};
  double c[4];
  matmul(a, b, c, 2, 2, 2);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(Linalg, MatmulRectangular) {
  // (2x3) * (3x1)
  double a[] = {1, 0, 2, 0, 3, 1};
  double b[] = {4, 5, 6};
  double c[2];
  matmul(a, b, c, 2, 3, 1);
  EXPECT_DOUBLE_EQ(c[0], 16);
  EXPECT_DOUBLE_EQ(c[1], 21);
}

TEST(Linalg, Frobenius) {
  double a[] = {3, 4, 0, 0};
  EXPECT_DOUBLE_EQ(frobenius(a, 2, 2), 5.0);
}

TEST(Linalg, JacobiDiagonalMatrix) {
  std::vector<double> a = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  std::vector<double> w, v;
  jacobi_eigensymm(a, 3, w, v);
  EXPECT_NEAR(w[0], 1, 1e-12);
  EXPECT_NEAR(w[1], 2, 1e-12);
  EXPECT_NEAR(w[2], 3, 1e-12);
}

TEST(Linalg, JacobiKnown2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  std::vector<double> a = {2, 1, 1, 2};
  std::vector<double> w, v;
  jacobi_eigensymm(a, 2, w, v);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 3.0, 1e-12);
  // Eigenvector for lambda=1 is ~(1,-1)/sqrt(2).
  EXPECT_NEAR(std::abs(v[0]), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(Linalg, JacobiReconstructsRandomSymmetric) {
  constexpr std::int64_t n = 40;
  Xoshiro256 rng(11);
  std::vector<double> a(n * n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double x = rng.uniform(-1, 1);
      a[static_cast<std::size_t>(i * n + j)] = x;
      a[static_cast<std::size_t>(j * n + i)] = x;
    }
  }
  std::vector<double> w, v;
  jacobi_eigensymm(a, n, w, v);

  // Eigenvalues sorted ascending.
  for (std::int64_t i = 1; i < n; ++i) {
    EXPECT_LE(w[static_cast<std::size_t>(i - 1)],
              w[static_cast<std::size_t>(i)]);
  }
  // A * v_col ~= w * v_col for every column.
  for (std::int64_t col = 0; col < n; ++col) {
    for (std::int64_t i = 0; i < n; ++i) {
      double av = 0;
      for (std::int64_t j = 0; j < n; ++j) {
        av += a[static_cast<std::size_t>(i * n + j)] *
              v[static_cast<std::size_t>(j * n + col)];
      }
      EXPECT_NEAR(av,
                  w[static_cast<std::size_t>(col)] *
                      v[static_cast<std::size_t>(i * n + col)],
                  1e-8);
    }
  }
  // Orthonormal eigenvectors.
  for (std::int64_t c1 = 0; c1 < 5; ++c1) {
    for (std::int64_t c2 = 0; c2 < 5; ++c2) {
      double dot = 0;
      for (std::int64_t i = 0; i < n; ++i) {
        dot += v[static_cast<std::size_t>(i * n + c1)] *
               v[static_cast<std::size_t>(i * n + c2)];
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Linalg, JacobiDeterministic) {
  std::vector<double> a = {4, 1, 2, 1, 3, 0.5, 2, 0.5, 5};
  std::vector<double> w1, v1, w2, v2;
  jacobi_eigensymm(a, 3, w1, v1);
  jacobi_eigensymm(a, 3, w2, v2);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(v1, v2);
}

}  // namespace
}  // namespace scioto
