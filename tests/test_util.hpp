// Shared helpers for Scioto tests: SPMD launchers over both backends.
#pragma once

#include <functional>
#include <string>

#include "pgas/runtime.hpp"
#include "sim/machine.hpp"

namespace scioto::testing {

inline pgas::Config make_cfg(int nranks, pgas::BackendKind kind,
                             std::uint64_t seed = 42) {
  pgas::Config cfg;
  cfg.nranks = nranks;
  cfg.backend = kind;
  cfg.machine = sim::test_machine();
  cfg.seed = seed;
  return cfg;
}

/// Runs `body` SPMD on the requested backend; returns elapsed
/// (virtual for sim, wall for threads) nanoseconds.
inline TimeNs run(int nranks, pgas::BackendKind kind,
                  const std::function<void(pgas::Runtime&)>& body,
                  std::uint64_t seed = 42) {
  return pgas::run_spmd(make_cfg(nranks, kind, seed), body).elapsed;
}

inline TimeNs run_sim(int nranks,
                      const std::function<void(pgas::Runtime&)>& body,
                      std::uint64_t seed = 42) {
  return run(nranks, pgas::BackendKind::Sim, body, seed);
}

inline TimeNs run_threads(int nranks,
                          const std::function<void(pgas::Runtime&)>& body,
                          std::uint64_t seed = 42) {
  return run(nranks, pgas::BackendKind::Threads, body, seed);
}

/// Readable parameter names for INSTANTIATE_TEST_SUITE_P over backends.
inline std::string backend_name(pgas::BackendKind k) {
  return k == pgas::BackendKind::Sim ? "Sim" : "Threads";
}

}  // namespace scioto::testing
