// TCE tests: block system construction, sparsity masks, task enumeration,
// and numerical agreement of both parallel schedulers with the dense
// reference contraction.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/tce/tce_drivers.hpp"
#include "test_util.hpp"

namespace scioto::apps {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

TceConfig tiny_cfg() {
  TceConfig cfg;
  cfg.nblocks = 6;
  cfg.min_block = 2;
  cfg.max_block = 6;
  cfg.density = 0.5;
  cfg.seed = 31;
  return cfg;
}

TEST(Tce, BuildIsConsistentAndDeterministic) {
  TceSystem a = TceSystem::build(tiny_cfg());
  TceSystem b = TceSystem::build(tiny_cfg());
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.nza, b.nza);
  EXPECT_EQ(a.nzb, b.nzb);
  EXPECT_EQ(a.boff.back(), a.n);
  for (std::int64_t r = 0; r < a.n; ++r) {
    int blk = a.block_of(r);
    EXPECT_GE(r, a.boff[static_cast<std::size_t>(blk)]);
    EXPECT_LT(r, a.boff[static_cast<std::size_t>(blk) + 1]);
  }
}

TEST(Tce, ElementsRespectSparsity) {
  TceSystem sys = TceSystem::build(tiny_cfg());
  for (std::int64_t i = 0; i < sys.n; i += 3) {
    for (std::int64_t j = 0; j < sys.n; j += 3) {
      if (!sys.a_nonzero(sys.block_of(i), sys.block_of(j))) {
        EXPECT_EQ(sys.a_elem(i, j), 0.0);
      }
      if (!sys.b_nonzero(sys.block_of(i), sys.block_of(j))) {
        EXPECT_EQ(sys.b_elem(i, j), 0.0);
      }
    }
  }
}

TEST(Tce, TaskListMatchesMasks) {
  TceSystem sys = TceSystem::build(tiny_cfg());
  auto ts = sys.tasks();
  EXPECT_GT(ts.size(), 0u);
  for (const auto& t : ts) {
    EXPECT_TRUE(sys.a_nonzero(t.a, t.k));
    EXPECT_TRUE(sys.b_nonzero(t.k, t.b));
  }
  // Rough expectation: ~density^2 * nb^3 triples.
  double expected = sys.cfg.density * sys.cfg.density * sys.nb * sys.nb *
                    sys.nb;
  EXPECT_GT(static_cast<double>(ts.size()), expected * 0.4);
  EXPECT_LT(static_cast<double>(ts.size()), expected * 2.5);
}

TEST(Tce, DensityOneIsDenseMultiply) {
  TceConfig cfg = tiny_cfg();
  cfg.density = 1.0;
  TceSystem sys = TceSystem::build(cfg);
  EXPECT_EQ(sys.tasks().size(),
            static_cast<std::size_t>(sys.nb) * static_cast<std::size_t>(
                sys.nb) * static_cast<std::size_t>(sys.nb));
}

class TceParallel : public ::testing::TestWithParam<
                        std::tuple<BackendKind, int, LbScheme>> {};

TEST_P(TceParallel, MatchesDenseReference) {
  auto [kind, nranks, lb] = GetParam();
  TceSystem sys = TceSystem::build(tiny_cfg());
  TceRunResult res;
  testing::run(nranks, kind, [&](Runtime& rt) {
    res = tce_run(rt, sys, lb, /*verify=*/true);
  });
  EXPECT_GE(res.max_error, 0.0);
  EXPECT_LT(res.max_error, 1e-10);
  EXPECT_EQ(res.tasks, sys.tasks().size());
  EXPECT_GT(res.c_norm2, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TceParallel,
    ::testing::Combine(::testing::Values(BackendKind::Sim,
                                         BackendKind::Threads),
                       ::testing::Values(1, 4, 6),
                       ::testing::Values(LbScheme::Scioto,
                                         LbScheme::GlobalCounter)),
    [](const auto& info) {
      return scioto::testing::backend_name(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_" +
             lb_name(std::get<2>(info.param));
    });

TEST(TceSim, DeterministicElapsedAcrossRuns) {
  TceSystem sys = TceSystem::build(tiny_cfg());
  auto once = [&](LbScheme lb) {
    TceRunResult res;
    testing::run_sim(5, [&](Runtime& rt) { res = tce_run(rt, sys, lb); });
    return res;
  };
  for (LbScheme lb : {LbScheme::Scioto, LbScheme::GlobalCounter}) {
    TceRunResult a = once(lb);
    TceRunResult b = once(lb);
    EXPECT_EQ(a.elapsed, b.elapsed) << lb_name(lb);
    EXPECT_EQ(a.c_norm2, b.c_norm2) << lb_name(lb);
    EXPECT_EQ(a.steals, b.steals) << lb_name(lb);
  }
}

TEST(TceSim, SciotoBeatsCounterAtScale) {
  // The headline TCE claim: fine-grained tasks + a serialized counter +
  // locality-oblivious placement lose to Scioto as ranks grow.
  // Blocks must outnumber ranks for locality-aware placement to have any
  // rows to pin tasks to (as in the paper's real workloads).
  TceConfig cfg;
  cfg.nblocks = 24;
  cfg.min_block = 4;
  cfg.max_block = 12;
  cfg.density = 0.5;
  cfg.seed = 31;
  TceSystem sys = TceSystem::build(cfg);
  auto time_for = [&](int n, LbScheme lb) {
    TceRunResult res;
    pgas::Config pc = testing::make_cfg(n, BackendKind::Sim);
    pc.machine = sim::cluster2008_uniform();
    pgas::run_spmd(pc, [&](Runtime& rt) { res = tce_run(rt, sys, lb); });
    return res.elapsed;
  };
  TimeNs scioto16 = time_for(16, LbScheme::Scioto);
  TimeNs counter16 = time_for(16, LbScheme::GlobalCounter);
  EXPECT_LT(scioto16, counter16);
}

}  // namespace
}  // namespace scioto::apps
