// Unit tests for src/base: SHA-1 vectors, RNG statistics and determinism,
// option parsing, table rendering, accumulators.
#include <gtest/gtest.h>

#include <set>

#include "base/error.hpp"
#include "base/options.hpp"
#include "base/rng.hpp"
#include "base/sha1.hpp"
#include "base/stats.hpp"
#include "base/table.hpp"
#include "base/types.hpp"

namespace scioto {
namespace {

// ---- SHA-1 (RFC 3174 / FIPS 180-1 test vectors) ----

TEST(Sha1, EmptyMessage) {
  EXPECT_EQ(Sha1::hex(Sha1::hash("", 0)),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::hex(Sha1::hash("abc", 3)),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  const char* msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(Sha1::hex(Sha1::hash(msg, 56)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update(chunk.data(), chunk.size());
  }
  EXPECT_EQ(Sha1::hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  std::string msg(301, 'x');
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<char>('a' + (i * 7) % 26);
  }
  Sha1 h;
  // Uneven chunking across the 64-byte block boundary.
  h.update(msg.data(), 63);
  h.update(msg.data() + 63, 1);
  h.update(msg.data() + 64, 130);
  h.update(msg.data() + 194, msg.size() - 194);
  EXPECT_EQ(Sha1::hex(h.finish()),
            Sha1::hex(Sha1::hash(msg.data(), msg.size())));
}

TEST(Sha1, ResetReusesHasher) {
  Sha1 h;
  h.update("abc", 3);
  (void)h.finish();
  h.reset();
  h.update("abc", 3);
  EXPECT_EQ(Sha1::hex(h.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// ---- RNG ----

TEST(Rng, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Xoshiro256 r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = r.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Xoshiro256 r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DeriveSeedIndependentStreams) {
  EXPECT_NE(derive_seed(42, 0, 0), derive_seed(42, 1, 0));
  EXPECT_NE(derive_seed(42, 0, 0), derive_seed(42, 0, 1));
  EXPECT_EQ(derive_seed(42, 3, 2), derive_seed(42, 3, 2));
}

// ---- Options ----

TEST(Options, ParsesTypes) {
  Options o("prog", "test");
  o.add_int("n", 4, "count");
  o.add_double("x", 1.5, "factor");
  o.add_string("name", "abc", "label");
  o.add_flag("fast", false, "go fast");
  const char* argv[] = {"prog", "--n", "9", "--x=2.5", "--fast", "pos1"};
  ASSERT_TRUE(o.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(o.get_int("n"), 9);
  EXPECT_DOUBLE_EQ(o.get_double("x"), 2.5);
  EXPECT_EQ(o.get_string("name"), "abc");
  EXPECT_TRUE(o.get_flag("fast"));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "pos1");
}

TEST(Options, NoFlagNegation) {
  Options o("prog", "test");
  o.add_flag("dlb", true, "dynamic load balancing");
  const char* argv[] = {"prog", "--no-dlb"};
  ASSERT_TRUE(o.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(o.get_flag("dlb"));
}

TEST(Options, UnknownOptionThrows) {
  Options o("prog", "test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(o.parse(3, const_cast<char**>(argv)), Error);
}

TEST(Options, BadValueThrows) {
  Options o("prog", "test");
  o.add_int("n", 1, "count");
  const char* argv[] = {"prog", "--n", "xyz"};
  EXPECT_THROW(o.parse(3, const_cast<char**>(argv)), Error);
}

TEST(Options, HelpReturnsFalse) {
  Options o("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(o.parse(2, const_cast<char**>(argv)));
}

// ---- Table ----

TEST(Table, RendersAlignedWithCsvMirror) {
  Table t({"Procs", "Time(us)"});
  t.add_row({"1", "3.5"});
  t.add_row({"64", "29.008"});
  std::string s = t.render("Demo");
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("# csv: Procs,Time(us)"), std::string::npos);
  EXPECT_NE(s.find("# csv: 64,29.008"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::int64_t{42}), "42");
}

// ---- Accumulator ----

TEST(Stats, WelfordBasics) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    a.add(v);
  }
  EXPECT_EQ(a.count(), 8);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Stats, MergeMatchesSequential) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    double v = i * 0.37 - 3;
    all.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Stats, EmptyAccumulatorSafe) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

// ---- Types helpers ----

TEST(Types, TimeConversions) {
  EXPECT_EQ(us(1.0), 1000);
  EXPECT_EQ(ms(1.0), 1000000);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_EQ(align_up(13, 8), 16u);
  EXPECT_EQ(align_up(16, 8), 16u);
  EXPECT_EQ(ceil_div(10, 3), 4u);
}

}  // namespace
}  // namespace scioto
