// Elastic membership tests: runtime rank join (a parked tail of ranks is
// admitted mid-UTS and the traversal total stays bit-exact), quiesce +
// checkpoint/restore (a killed-then-checkpointed run restored onto a
// DIFFERENT fleet size sums to exactly the uninterrupted traversal),
// quiesce under real concurrent steal traffic (threads backend, the TSan
// leg), the C API knobs, the fail-fast on join/ckpt rules naming ranks
// outside the run, and the elastic-off byte-identity pin on the trace
// stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "detect/membership.hpp"
#include "elastic/elastic.hpp"
#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "scioto/scioto_c.h"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

/// Stages elasticity on for the enclosing scope and restores the prior
/// staged config on exit (run_spmd arms/disarms the session itself).
class ElasticGuard {
 public:
  explicit ElasticGuard(const elastic::Config* tuned = nullptr)
      : saved_(elastic::config()) {
    elastic::Config c = tuned ? *tuned : saved_;
    c.enabled = true;
    elastic::set_config(c);
  }
  ~ElasticGuard() { elastic::set_config(saved_); }

 private:
  elastic::Config saved_;
};

std::string tmp_ckpt_path(const char* tag) {
  return ::testing::TempDir() + "scioto_elastic_" + tag + ".ckpt";
}

void remove_ckpt_files(const std::string& base, int nranks) {
  std::remove(base.c_str());
  for (int r = 0; r < nranks; ++r) {
    std::remove((base + ".r" + std::to_string(r)).c_str());
  }
}

apps::UtsResult run_uts_elastic(int nranks, const std::string& plan,
                                std::uint64_t seed,
                                const apps::UtsParams& tree,
                                pgas::BackendKind backend =
                                    pgas::BackendKind::Sim) {
  fault::start(nranks, fault::FaultPlan::parse(plan), seed);
  apps::UtsResult res;
  std::mutex res_mu;
  testing::run(
      nranks, backend,
      [&](Runtime& rt) {
        apps::UtsRunConfig rc;
        apps::UtsResult mine = apps::uts_run_scioto_elastic(rt, tree, rc);
        std::lock_guard<std::mutex> g(res_mu);
        res = mine;
      },
      seed);
  fault::stop();
  return res;
}

#if SCIOTO_ELASTIC_ENABLED

// ---- runtime rank join: grow the fleet mid-traversal ----

TEST(ElasticGrow, UtsExactGrow4To8Sim8Seeds) {
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const std::string plan =
      "join:rank=4,at=60us;join:rank=5,at=60us;"
      "join:rank=6,at=120us;join:rank=7,at=120us";
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ElasticGuard guard;
    apps::UtsResult res = run_uts_elastic(8, plan, seed, tree);
    EXPECT_TRUE(res.counts == expected)
        << "seed " << seed << " counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
    EXPECT_EQ(res.survivors, 8) << "seed " << seed;
    detect::Stats s = detect::stats();
    // All four parked ranks were admitted, in at most two waves (the
    // admitter batches whatever requests it finds per scan).
    EXPECT_EQ(s.joins, 4u) << "seed " << seed;
    EXPECT_GE(s.grows, 1u) << "seed " << seed;
    EXPECT_LE(s.grows, 4u) << "seed " << seed;
  }
}

TEST(ElasticGrow, UtsExactGrow2To4Threads8Seeds) {
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  // Threads-backend join rules trigger on parked-poll counts (after=),
  // not virtual time. The thresholds are tiny and the tree is the mid-size
  // one: a wall-clock backend gives no scheduling guarantees, so the
  // request must go out on the parked rank's first few time slices and the
  // traversal must comfortably outlast thread-scheduling noise for the
  // admission to be deterministic in practice.
  const std::string plan = "join:rank=2,after=2;join:rank=3,after=4";
  // The detector itself is not under test here (no kills in the plan) and
  // its default cadence is tuned for the sim: on a wall-clock backend,
  // scheduling noise can push a live rank past the sub-millisecond confirm
  // window, and the resulting false-confirm churn destabilizes who the
  // parked ranks believe the admitter is. Back detection way off.
  detect::Config saved_d = detect::config();
  detect::Config dc = saved_d;
  dc.hb_period = us(200);
  dc.probe_period = us(1000);
  dc.suspect_after = ms(50);
  dc.confirm_after = ms(200);
  detect::set_config(dc);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ElasticGuard guard;
    apps::UtsResult res = run_uts_elastic(4, plan, seed, tree,
                                          pgas::BackendKind::Threads);
    EXPECT_TRUE(res.counts == expected)
        << "seed " << seed << " counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
    detect::Stats s = detect::stats();
    EXPECT_EQ(s.joins, 2u) << "seed " << seed;
  }
  detect::set_config(saved_d);
}

TEST(ElasticGrow, JoinersBecomeWorkersNotJustPassengers) {
  // Pin that admitted ranks actually execute work: with the join early in
  // a decently sized traversal, the grown fleet's execution totals must
  // exceed what the initial fleet alone could have done by the join time
  // -- concretely, every rank's durable patch ends nonzero, which the
  // bit-exact total already implies unless the joiners stole nothing.
  const apps::UtsParams tree = apps::uts_small();
  ElasticGuard guard;
  apps::UtsResult res = run_uts_elastic(
      8, "join:rank=4,at=50us;join:rank=5,at=50us;"
         "join:rank=6,at=50us;join:rank=7,at=50us",
      3, tree);
  // Joiners enter empty and can only acquire work by stealing; a grown
  // run that stays exact must therefore have steal traffic.
  EXPECT_GT(res.stats.steals, 0u);
  EXPECT_EQ(detect::stats().joins, 4u);
}

// ---- checkpoint/restore ----

TEST(ElasticCkpt, KillQuarterCkptRestoreOntoFewerRanksExact) {
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const std::string base = tmp_ckpt_path("kill_restore");
  remove_ckpt_files(base, 8);

  // Run 1 (8 ranks): two ranks die early, the heartbeat detector (armed
  // by the elastic session's membership view) confirms them, wards adopt
  // their queues, and at 1.2ms the survivors quiesce, snapshot, and halt.
  {
    elastic::Config ec;
    ec.ckpt_path = base;
    ec.halt_after_ckpt = true;
    ElasticGuard guard(&ec);
    apps::UtsResult partial = run_uts_elastic(
        8, "kill:rank=2,at=200us;kill:rank=5,at=300us;ckpt:at=1200us", 42,
        tree);
    // The phase was cut short: the snapshot exists and the partial count
    // is strictly less than the full traversal.
    EXPECT_EQ(elastic::stats().checkpoints, 1u);
    EXPECT_LT(partial.counts.nodes, expected.nodes);
    std::FILE* mf = std::fopen(base.c_str(), "r");
    ASSERT_NE(mf, nullptr) << "manifest " << base << " missing";
    std::fclose(mf);
  }

  // Run 2 (4 ranks -- a different fleet size): restore the snapshot and
  // run to completion. The restored descriptors are dealt round-robin,
  // the blobs carry every patch's executed-node counts (dead ranks'
  // included, folded by the quiesce leader), and the final sum must be
  // bit-identical to the uninterrupted traversal.
  {
    elastic::Config ec;
    ec.restore_path = base;
    ElasticGuard guard(&ec);
    apps::UtsResult res = run_uts_elastic(4, "", 7, tree);
    EXPECT_TRUE(res.counts == expected)
        << "restored run counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
    EXPECT_EQ(elastic::stats().restores, 1u);
  }
  remove_ckpt_files(base, 8);
}

TEST(ElasticCkpt, MidRunCheckpointDoesNotPerturbTheResultSim) {
  // A checkpoint without halt_after_ckpt is a pure pause: quiesce,
  // snapshot, resume. The traversal must stay exact and the run must
  // still terminate through the normal all-white wave.
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const std::string base = tmp_ckpt_path("passthrough");
  remove_ckpt_files(base, 8);
  elastic::Config ec;
  ec.ckpt_path = base;
  ElasticGuard guard(&ec);
  apps::UtsResult res = run_uts_elastic(8, "ckpt:at=300us", 11, tree);
  EXPECT_TRUE(res.counts == expected)
      << "counted " << res.counts.nodes << " nodes, expected "
      << expected.nodes;
  EXPECT_EQ(elastic::stats().checkpoints, 1u);
  remove_ckpt_files(base, 8);
}

TEST(ElasticCkpt, GrowThenCheckpointThenRestoreExact) {
  // Compose the two halves: grow 4 -> 6 mid-run, checkpoint the grown
  // fleet, halt, and restore onto 3 ranks. Exercises restore-onto-fewer
  // with a manifest whose parts came from a fleet that itself changed
  // size mid-phase.
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const std::string base = tmp_ckpt_path("grow_ckpt");
  remove_ckpt_files(base, 6);
  {
    elastic::Config ec;
    ec.ckpt_path = base;
    ec.halt_after_ckpt = true;
    ElasticGuard guard(&ec);
    (void)run_uts_elastic(
        6, "join:rank=4,at=80us;join:rank=5,at=80us;ckpt:at=1ms", 21, tree);
    EXPECT_EQ(elastic::stats().checkpoints, 1u);
    EXPECT_EQ(detect::stats().joins, 2u);
  }
  {
    elastic::Config ec;
    ec.restore_path = base;
    ElasticGuard guard(&ec);
    apps::UtsResult res = run_uts_elastic(3, "", 5, tree);
    EXPECT_TRUE(res.counts == expected)
        << "restored run counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
  }
  remove_ckpt_files(base, 6);
}

// ---- quiesce under real concurrency (the TSan leg) ----

TEST(ElasticQuiesce, UnderConcurrentStealsThreads4Seeds) {
  // Threads backend: the quiesce rendezvous races live steal traffic with
  // no virtual-time serialization. The in-flight-steal drain argument
  // (a steal transaction never spans a safepoint) plus the SHA1-framed
  // parts must hold under TSan; the checkpoint is write-only here, the
  // pinned property is an exact traversal with >= 1 completed quiesce.
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const std::string base = tmp_ckpt_path("tsan_quiesce");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    remove_ckpt_files(base, 4);
    elastic::Config ec;
    ec.ckpt_path = base;
    ElasticGuard guard(&ec);
    // Threads-backend ckpt rules trigger on pump-poll counts (after=).
    apps::UtsResult res = run_uts_elastic(4, "ckpt:after=20", seed, tree,
                                          pgas::BackendKind::Threads);
    EXPECT_TRUE(res.counts == expected)
        << "seed " << seed << " counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
  }
  remove_ckpt_files(base, 4);
}

// ---- monitor rollup: joins/grows surface in the fleet samples ----

#if SCIOTO_METRICS_ENABLED

TEST(ElasticMonitor, JoinsSurfaceInFleetSamples) {
  const apps::UtsParams tree = apps::uts_small();
  ElasticGuard guard;
  metrics::Config mc = metrics::config();
  mc.enabled = true;
  metrics::set_config(mc);
  apps::UtsResult res = run_uts_elastic(
      6, "join:rank=4,at=60us;join:rank=5,at=60us", 9, tree);
  mc.enabled = false;
  metrics::set_config(mc);
  (void)res;
  const std::vector<metrics::FleetSample>& samples =
      metrics::monitor_samples();
  ASSERT_FALSE(samples.empty());
  // Before the join the parked tail reports as not-participating, after
  // it the rollup closes at 6 alive; the growth counters land in the
  // samples once the admission wave happens.
  const metrics::FleetSample& last = samples.back();
  EXPECT_EQ(last.joins, 2u);
  EXPECT_GE(last.grows, 1u);
  EXPECT_EQ(last.alive + last.suspects + last.dead,
            static_cast<int>(last.ranks.size()));
}

#endif  // SCIOTO_METRICS_ENABLED

// ---- C API ----

TEST(ElasticCApi, KnobsRoundTrip) {
  const elastic::Config before = elastic::config();

  EXPECT_EQ(scioto_elastic_enabled(), 0);
  scioto_elastic_set(1);
  EXPECT_EQ(scioto_elastic_enabled(), 1);

  scioto_ckpt_path_set("/tmp/roundtrip.ckpt");
  EXPECT_STREQ(scioto_ckpt_path(), "/tmp/roundtrip.ckpt");
  scioto_ckpt_set_period_ns(ms(2));
  EXPECT_EQ(scioto_ckpt_period_ns(), ms(2));

  scioto_ckpt_restore_set("/tmp/roundtrip.ckpt");
  EXPECT_STREQ(scioto_ckpt_restore_path(), "/tmp/roundtrip.ckpt");
  scioto_ckpt_restore_set(nullptr);
  EXPECT_STREQ(scioto_ckpt_restore_path(), "");

  EXPECT_EQ(scioto_ckpt_halt_after(), 0);
  scioto_ckpt_set_halt_after(1);
  EXPECT_EQ(scioto_ckpt_halt_after(), 1);
  scioto_ckpt_set_halt_after(0);

  // Clearing the path drops the staged cadence with it (a period without
  // a path cannot stage).
  scioto_ckpt_path_set("");
  EXPECT_EQ(scioto_ckpt_period_ns(), 0);

  elastic::set_config(before);
  EXPECT_EQ(scioto_elastic_enabled(), before.enabled ? 1 : 0);
}

TEST(ElasticCApi, StatsSurfaceAfterGrowRun) {
  const apps::UtsParams tree = apps::uts_tiny();
  ElasticGuard guard;
  (void)run_uts_elastic(4, "join:rank=3,at=30us", 13, tree);
  scioto_elastic_stats_t s;
  scioto_elastic_stats_get(&s);
  EXPECT_EQ(s.joins, 1u);
  EXPECT_EQ(s.grows, 1u);
  EXPECT_EQ(s.checkpoints, 0u);
  EXPECT_EQ(s.restores, 0u);
}

// ---- fail-fast: rules naming ranks outside the run ----

TEST(ElasticPlan, JoinRuleRankOutOfRangeFailsFastEchoingTheRule) {
  fault::FaultPlan plan =
      fault::FaultPlan::parse("kill:rank=1,at=1ms;join:rank=9,at=2ms");
  try {
    fault::start(8, plan, 1);
    fault::stop();
    FAIL() << "fault::start accepted a join rule for rank 9 of 8";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nranks=8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("join rank=9"), std::string::npos)
        << "error must echo the offending rule, got: " << msg;
  }
}

TEST(ElasticPlan, JoinersMustFormContiguousTail) {
  // rank 1 of 4 has a join rule but ranks 2..3 do not: membership parks
  // by count, so elastic::start must reject the gap outright.
  ElasticGuard guard;
  fault::start(4, fault::FaultPlan::parse("join:rank=1,at=1ms"), 1);
  EXPECT_THROW(elastic::start(4), Error);
  fault::stop();

  // Rank 0 can never be a joiner: it anchors the initial fleet.
  fault::start(2, fault::FaultPlan::parse("join:rank=0,at=1ms;"
                                          "join:rank=1,at=1ms"),
               1);
  EXPECT_THROW(elastic::start(2), Error);
  fault::stop();
}

// ---- elastic-off byte-identity pin ----

#if SCIOTO_TRACE_ENABLED

TEST(ElasticOff, TraceByteIdenticalWithElasticStagedButDisabled) {
  // The elastic layer is linked into every run; staged-but-disabled
  // config must leave the trace stream byte-identical to a run that
  // never touched elastic at all (the fig4/fig7 baseline guarantee).
  const apps::UtsParams tree = apps::uts_tiny();
  auto traced_run = [&]() {
    trace::start(4);
    testing::run_sim(4, [&](Runtime& rt) {
      apps::UtsRunConfig rc;
      (void)apps::uts_run_scioto(rt, tree, rc);
    });
    std::vector<trace::Event> evs = trace::all_events();
    trace::stop();
    return evs;
  };
  std::vector<trace::Event> a = traced_run();
  elastic::Config staged = elastic::config();
  staged.enabled = false;
  staged.ckpt_path = "/tmp/never_written.ckpt";
  staged.ckpt_period = ms(1);
  elastic::set_config(staged);
  std::vector<trace::Event> b = traced_run();
  staged = elastic::Config{};
  elastic::set_config(staged);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << "event " << i;
    EXPECT_EQ(a[i].a, b[i].a) << "event " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "event " << i;
    EXPECT_EQ(a[i].c, b[i].c) << "event " << i;
    if (::testing::Test::HasFailure()) break;
  }
  // And no elastic event kind ever appears in a disabled run.
  for (const trace::Event& e : b) {
    EXPECT_NE(e.kind, trace::Ev::JoinRequest);
    EXPECT_NE(e.kind, trace::Ev::JoinAdmit);
    EXPECT_NE(e.kind, trace::Ev::Quiesce);
    EXPECT_NE(e.kind, trace::Ev::Checkpoint);
    EXPECT_NE(e.kind, trace::Ev::Restore);
  }
}

#endif  // SCIOTO_TRACE_ENABLED

#else  // !SCIOTO_ELASTIC_ENABLED

TEST(Elastic, CompiledOut) {
  GTEST_SKIP() << "built with SCIOTO_ELASTIC=OFF; elastic membership is "
                  "compiled to nothing";
}

#endif  // SCIOTO_ELASTIC_ENABLED

}  // namespace
}  // namespace scioto
