// Property/model test for the split queue on a tiny ring: exhaustively
// enumerate short sequences of owner/thief operations against a reference
// model (two std::vectors) and assert after every single transition that
//
//   * the control indices obey steal_head <= split <= priv_tail,
//   * queue occupancy never exceeds capacity,
//   * sizes of the private/shared portions match the model exactly,
//   * every operation's return value matches the model's prediction,
//   * every task that comes back out (pop or steal) carries exactly the
//     id the model says occupies that position,
//   * after draining, nothing was lost and nothing was duplicated.
//
// The ring is deliberately minuscule (capacity 8 -> internal capacity 13
// with one rank and chunk 2). Because the indices start at
// kIndexBase = 2^32 and 2^32 mod 13 = 9, the physical ring wraps after
// only four slots of advance -- wrap-around coverage is automatic, and a
// phase-spin between sequences shifts the wrap point through the ring.
//
// Runs the enumeration over the steal-knob grid (adaptive chunking and
// the owner fast path change which code paths move the split pointer, but
// must never change the externally visible queue contents), and over the
// Split and LockFree queue modes. The Chase-Lev LockFree mode has one
// observable semantic difference the model tracks: when the shared
// portion is thinner than the fast-path margin (2 * chunk_max),
// reacquire() self-steals through the thief CAS path, so the *oldest*
// shared tasks come back as the *newest* private tasks instead of the
// newest shared becoming the oldest private.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <set>
#include <vector>

#include "scioto/queue.hpp"
#include "scioto/task.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

constexpr std::size_t kSlot = 16;
constexpr std::uint64_t kCapacity = 8;
constexpr int kChunk = 2;
constexpr std::uint64_t kThreshold = 2;

enum class Op { PushHigh, PushLow, Pop, Release, Reacquire, SelfSteal };
constexpr Op kOps[] = {Op::PushHigh, Op::PushLow,    Op::Pop,
                       Op::Release,  Op::Reacquire,  Op::SelfSteal};
constexpr int kNumOps = 6;

const char* op_name(Op op) {
  switch (op) {
    case Op::PushHigh:  return "PushHigh";
    case Op::PushLow:   return "PushLow";
    case Op::Pop:       return "Pop";
    case Op::Release:   return "Release";
    case Op::Reacquire: return "Reacquire";
    case Op::SelfSteal: return "SelfSteal";
  }
  return "?";
}

void make_slot(std::byte* buf, std::uint64_t id) {
  std::memset(buf, 0, kSlot);
  std::memcpy(buf, &id, sizeof(id));
}

std::uint64_t slot_id(const std::byte* buf) {
  std::uint64_t id;
  std::memcpy(&id, buf, sizeof(id));
  return id;
}

/// Reference model of one rank's split queue. Both deques hold task ids in
/// ring order: shared_[0] sits at steal_head (oldest, stolen first),
/// priv_.back() sits at priv_tail - 1 (newest, popped first).
struct Model {
  std::deque<std::uint64_t> shared_;
  std::deque<std::uint64_t> priv_;

  std::uint64_t size() const { return shared_.size() + priv_.size(); }

  bool push_high(std::uint64_t id) {
    if (size() >= kCapacity) return false;
    priv_.push_back(id);
    return true;
  }
  // The low-affinity path enters at steal_head - 1 and reserves one slot
  // of headroom (the capacity check counts the slot being claimed).
  bool push_low(std::uint64_t id) {
    if (size() + 1 >= kCapacity) return false;
    shared_.push_front(id);
    return true;
  }
  bool pop(std::uint64_t* id) {
    if (priv_.empty()) return false;
    *id = priv_.back();
    priv_.pop_back();
    return true;
  }
  std::uint64_t release_maybe() {
    if (priv_.size() <= kThreshold ||
        shared_.size() >= static_cast<std::uint64_t>(kChunk)) {
      return 0;
    }
    std::uint64_t give = priv_.size() / 2;
    // The oldest private tasks sit just above split: they become the
    // newest shared tasks.
    for (std::uint64_t i = 0; i < give; ++i) {
      shared_.push_back(priv_.front());
      priv_.pop_front();
    }
    return give;
  }
  std::uint64_t reacquire(QueueMode mode, bool adaptive) {
    if (shared_.empty()) return 0;
    std::uint64_t avail = shared_.size();
    if (mode == QueueMode::LockFree &&
        avail < 2 * static_cast<std::uint64_t>(kChunk)) {
      // Thin shared portion: no margin for the validated split publish,
      // so the owner self-steals through the thief CAS path (the classic
      // owner-CAS-on-top arbitration) and re-pushes -- the *oldest*
      // shared tasks become the *newest* private tasks.
      std::uint64_t n = steal_width(adaptive);
      for (std::uint64_t i = 0; i < n; ++i) {
        priv_.push_back(shared_.front());
        shared_.pop_front();
      }
      return n;
    }
    std::uint64_t take = avail - avail / 2;  // ceil(avail / 2)
    // The newest shared tasks (just below split) become the oldest
    // private tasks.
    for (std::uint64_t i = 0; i < take; ++i) {
      priv_.push_front(shared_.back());
      shared_.pop_back();
    }
    return take;
  }
  std::uint64_t steal_width(bool adaptive) const {
    std::uint64_t avail = shared_.size();
    const auto chunk = static_cast<std::uint64_t>(kChunk);
    if (!adaptive) return std::min(avail, chunk);
    return std::min((avail + 1) / 2, chunk);
  }
  /// Removes the n oldest shared tasks (what a steal takes) into `out`.
  void steal(std::uint64_t n, std::vector<std::uint64_t>* out) {
    for (std::uint64_t i = 0; i < n; ++i) {
      out->push_back(shared_.front());
      shared_.pop_front();
    }
  }
};

SplitQueue::Config model_cfg(QueueMode mode, bool adaptive, bool fastpath) {
  SplitQueue::Config c;
  c.slot_bytes = kSlot;
  c.capacity = kCapacity;
  c.chunk = kChunk;
  c.mode = mode;
  c.release_threshold = kThreshold;
  c.adaptive_chunk = adaptive;
  c.owner_fastpath = fastpath;
  return c;
}

/// Applies one op to both queue and model, checking predictions and index
/// invariants. Records removed ids (with duplicates detection) in `seen`.
void apply_checked(SplitQueue& q, Model& m, Op op, QueueMode mode,
                   bool adaptive, std::uint64_t* next_id,
                   std::uint64_t* pushed,
                   std::multiset<std::uint64_t>* removed,
                   const std::string& ctx) {
  std::byte buf[kSlot];
  std::byte steal_buf[kChunk * kSlot];
  switch (op) {
    case Op::PushHigh: {
      make_slot(buf, *next_id);
      bool want = m.push_high(*next_id);
      bool got = q.push_local(buf, kAffinityHigh);
      ASSERT_EQ(got, want) << ctx;
      if (want) ++*pushed;
      ++*next_id;
      break;
    }
    case Op::PushLow: {
      make_slot(buf, *next_id);
      bool want = m.push_low(*next_id);
      bool got = q.push_local(buf, kAffinityLow);
      ASSERT_EQ(got, want) << ctx;
      if (want) ++*pushed;
      ++*next_id;
      break;
    }
    case Op::Pop: {
      std::uint64_t want_id = 0;
      bool want = m.pop(&want_id);
      bool got = q.pop_local(buf);
      ASSERT_EQ(got, want) << ctx;
      if (want) {
        ASSERT_EQ(slot_id(buf), want_id) << ctx;
        removed->insert(want_id);
      }
      break;
    }
    case Op::Release: {
      std::uint64_t want = m.release_maybe();
      ASSERT_EQ(q.release_maybe(), want) << ctx;
      break;
    }
    case Op::Reacquire: {
      std::uint64_t want = m.reacquire(mode, adaptive);
      ASSERT_EQ(q.reacquire(), want) << ctx;
      break;
    }
    case Op::SelfSteal: {
      std::uint64_t want_n = m.steal_width(adaptive);
      std::vector<std::uint64_t> want_ids;
      m.steal(want_n, &want_ids);
      int got = q.steal_from(q.runtime().me(), steal_buf);
      ASSERT_GE(got, 0) << ctx;  // single rank: the lock is never busy
      ASSERT_EQ(static_cast<std::uint64_t>(got), want_n) << ctx;
      for (int i = 0; i < got; ++i) {
        std::uint64_t id = slot_id(steal_buf + i * kSlot);
        ASSERT_EQ(id, want_ids[static_cast<std::size_t>(i)]) << ctx;
        removed->insert(id);
      }
      break;
    }
  }
  // Index invariants + exact size agreement after EVERY transition.
  SplitQueue::Snapshot s = q.debug_snapshot(q.runtime().me());
  ASSERT_LE(s.steal_head, s.split) << ctx;
  ASSERT_LE(s.split, s.priv_tail) << ctx;
  ASSERT_LE(s.priv_tail - s.steal_head, kCapacity) << ctx;
  ASSERT_EQ(s.split - s.steal_head, m.shared_.size()) << ctx;
  ASSERT_EQ(s.priv_tail - s.split, m.priv_.size()) << ctx;
  ASSERT_EQ(q.shared_size(), m.shared_.size()) << ctx;
  ASSERT_EQ(q.private_size(), m.priv_.size()) << ctx;
}

/// Empties queue + model, asserting every remaining task comes out with
/// the right id, then checks conservation for the whole sequence.
void drain_checked(SplitQueue& q, Model& m, QueueMode mode, bool adaptive,
                   std::uint64_t pushed,
                   std::multiset<std::uint64_t>* removed,
                   const std::string& ctx) {
  std::byte buf[kSlot];
  while (m.size() > 0) {
    if (!m.priv_.empty()) {
      std::uint64_t want_id = 0;
      ASSERT_TRUE(m.pop(&want_id)) << ctx;
      ASSERT_TRUE(q.pop_local(buf)) << ctx;
      ASSERT_EQ(slot_id(buf), want_id) << ctx;
      removed->insert(want_id);
    } else {
      std::uint64_t want = m.reacquire(mode, adaptive);
      ASSERT_GT(want, 0u) << ctx;
      ASSERT_EQ(q.reacquire(), want) << ctx;
    }
  }
  ASSERT_TRUE(q.empty()) << ctx;
  SplitQueue::Snapshot s = q.debug_snapshot(q.runtime().me());
  ASSERT_EQ(s.steal_head, s.split) << ctx;
  ASSERT_EQ(s.split, s.priv_tail) << ctx;
  // Conservation: every accepted push came back out exactly once.
  ASSERT_EQ(removed->size(), pushed) << ctx;
  for (auto it = removed->begin(); it != removed->end(); ++it) {
    ASSERT_EQ(removed->count(*it), 1u) << ctx << " dup id=" << *it;
  }
}

/// Advances the ring phase by 2 slots per cycle while leaving the queue
/// empty, so different `phase_cycles` values place the physical
/// wrap-around point at different logical positions.
void spin_phase(SplitQueue& q, int cycles, std::uint64_t* next_id) {
  std::byte buf[kSlot];
  std::byte steal_buf[kChunk * kSlot];
  for (int i = 0; i < cycles; ++i) {
    for (int j = 0; j < 4; ++j) {
      make_slot(buf, *next_id + static_cast<std::uint64_t>(j));
      ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
    }
    *next_id += 4;
    ASSERT_EQ(q.release_maybe(), 2u);
    while (q.shared_size() > 0) {
      ASSERT_GT(q.steal_from(q.runtime().me(), steal_buf), 0);
    }
    while (q.pop_local(buf)) {
    }
    ASSERT_TRUE(q.empty());
  }
}

/// Enumerates every op sequence of length `len` against one knob combo,
/// starting each sequence at the given ring phase.
void run_enumeration(QueueMode mode, bool adaptive, bool fastpath, int len,
                     int phase_cycles) {
  testing::run_sim(1, [&](Runtime& rt) {
    SplitQueue q(rt, model_cfg(mode, adaptive, fastpath));
    std::uint64_t next_id = 1;
    long total = 1;
    for (int i = 0; i < len; ++i) total *= kNumOps;
    for (long code = 0; code < total; ++code) {
      q.reset_collective();
      spin_phase(q, phase_cycles, &next_id);
      if (::testing::Test::HasFatalFailure()) return;
      Model m;
      std::multiset<std::uint64_t> removed;
      std::uint64_t pushed = 0;
      std::string ctx;
      long c = code;
      for (int i = 0; i < len; ++i) {
        Op op = kOps[c % kNumOps];
        c /= kNumOps;
        ctx += op_name(op);
        ctx += ' ';
        apply_checked(q, m, op, mode, adaptive, &next_id, &pushed, &removed,
                      ctx);
        if (::testing::Test::HasFatalFailure()) return;
      }
      drain_checked(q, m, mode, adaptive, pushed, &removed, ctx);
      if (::testing::Test::HasFatalFailure()) return;
    }
    q.destroy();
  });
}

TEST(QueueModel, ExhaustiveLength6Baseline) {
  run_enumeration(QueueMode::Split, /*adaptive=*/false, /*fastpath=*/false,
                  /*len=*/6, /*phase_cycles=*/0);
}

TEST(QueueModel, ExhaustiveLength6AllKnobs) {
  run_enumeration(QueueMode::Split, /*adaptive=*/true, /*fastpath=*/true,
                  /*len=*/6, /*phase_cycles=*/1);
}

TEST(QueueModel, ExhaustiveLength6LockFree) {
  run_enumeration(QueueMode::LockFree, /*adaptive=*/false,
                  /*fastpath=*/false, /*len=*/6, /*phase_cycles=*/0);
}

TEST(QueueModel, ExhaustiveLength6LockFreeAdaptive) {
  run_enumeration(QueueMode::LockFree, /*adaptive=*/true, /*fastpath=*/false,
                  /*len=*/6, /*phase_cycles=*/1);
}

TEST(QueueModel, ExhaustiveLength4AcrossKnobsAndPhases) {
  for (QueueMode mode : {QueueMode::Split, QueueMode::LockFree}) {
    for (bool adaptive : {false, true}) {
      for (bool fastpath : {false, true}) {
        for (int phase : {0, 3, 5}) {
          run_enumeration(mode, adaptive, fastpath, /*len=*/4, phase);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

// A long random walk on the same tiny ring pushes the indices far enough
// that the physical ring wraps hundreds of times; the model must track
// every transition.
TEST(QueueModel, RandomWalkLongWrap) {
  for (QueueMode mode : {QueueMode::Split, QueueMode::LockFree}) {
    testing::run_sim(1, [&](Runtime& rt) {
      SplitQueue q(rt, model_cfg(mode, /*adaptive=*/true, /*fastpath=*/true));
      Model m;
      std::multiset<std::uint64_t> removed;
      std::uint64_t next_id = 1, pushed = 0;
      std::uint64_t state = 0x9e3779b97f4a7c15ull;  // deterministic walk
      for (int step = 0; step < 20000; ++step) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Op op = kOps[state % kNumOps];
        std::string ctx = std::string(queue_mode_name(mode)) + " step " +
                          std::to_string(step) + " " + op_name(op);
        apply_checked(q, m, op, mode, /*adaptive=*/true, &next_id, &pushed,
                      &removed, ctx);
        if (::testing::Test::HasFatalFailure()) return;
      }
      drain_checked(q, m, mode, /*adaptive=*/true, pushed, &removed,
                    "random-walk drain");
      q.destroy();
    });
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace scioto
