// Fault-injection subsystem tests: plan parsing, the deterministic retry
// backoff, transient one-sided-op fates, the C API knobs, and the headline
// recovery property -- UTS with a quarter of the ranks fail-stopped
// mid-traversal still matches the sequential node count bit-for-bit, and
// the same plan + seed replays a byte-identical trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "scioto/scioto_c.h"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace scioto {
namespace {

using pgas::OpStatus;
using pgas::Runtime;

// ---- plan parsing ----

TEST(FaultPlan, ParsesCompactSpec) {
  fault::FaultPlan p = fault::FaultPlan::parse(
      "kill:rank=3,at=5ms;drop:op=put,rank=1,count=2,at=1ms;"
      "stall:rank=0,dur=20us;truncate:rank=2,keep=0,count=4");
  ASSERT_EQ(p.events.size(), 4u);
  EXPECT_EQ(p.kill_count(), 1);
  EXPECT_EQ(p.events[0].type, fault::FaultType::Kill);
  EXPECT_EQ(p.events[0].rank, 3);
  EXPECT_EQ(p.events[0].at, ms(5));
  EXPECT_EQ(p.events[1].op, fault::OpKind::Put);
  EXPECT_EQ(p.events[1].count, 2);
  EXPECT_EQ(p.events[2].dur, us(20));
  EXPECT_EQ(p.events[3].keep, 0);
  EXPECT_FALSE(p.describe().empty());
}

TEST(FaultPlan, ParsesJsonSpec) {
  fault::FaultPlan p = fault::FaultPlan::parse(
      R"([{"type":"kill","rank":2,"at":"3ms"},)"
      R"({"type":"delay","op":"get","dur":"10us","count":5}])");
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_EQ(p.events[0].rank, 2);
  EXPECT_EQ(p.events[1].type, fault::FaultType::Delay);
  EXPECT_EQ(p.events[1].dur, us(10));
}

TEST(FaultPlan, ParsesFileSpec) {
  std::string path = ::testing::TempDir() + "/fault_plan_test.txt";
  {
    std::ofstream f(path);
    f << "kill:rank=1,at=2ms\n";
  }
  fault::FaultPlan p = fault::FaultPlan::parse("@" + path);
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].rank, 1);
  std::remove(path.c_str());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::FaultPlan::parse("explode:rank=1"), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("kill:at=1ms"), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("kill:rank=1,at=1parsec"),
               std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("@/no/such/plan.json"),
               std::runtime_error);
}

TEST(FaultPlan, RuleNamingRankOutsideTheRunFailsFastAtStart) {
  // The parser cannot range-check (it does not know nranks), so the check
  // lives at fault::start -- and the error must echo the offending rule,
  // or a multi-event plan's range error is undebuggable.
  fault::FaultPlan kill8 =
      fault::FaultPlan::parse("kill:rank=1,at=1ms;kill:rank=8,at=2ms");
  try {
    fault::start(8, std::move(kill8), 7);
    fault::stop();
    FAIL() << "fault::start accepted a rule for rank 8 in an 8-rank run";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("nranks=8"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("kill rank=8"), std::string::npos)
        << e.what();
  }
  // Elastic join rules go through the same gate.
  fault::FaultPlan join9 = fault::FaultPlan::parse("join:rank=9,at=2ms");
  try {
    fault::start(8, std::move(join9), 7);
    fault::stop();
    FAIL() << "fault::start accepted a join rule for rank 9 in an 8-rank run";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("join rank=9"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlan, ParsesTimeUnits) {
  EXPECT_EQ(fault::parse_time("250"), 250);
  EXPECT_EQ(fault::parse_time("250ns"), 250);
  EXPECT_EQ(fault::parse_time("3us"), us(3));
  EXPECT_EQ(fault::parse_time("1.5ms"), us(1500));
  EXPECT_EQ(fault::parse_time("2s"), ms(2000));
}

// ---- backoff ----

TEST(FaultBackoff, DeterministicJitteredAndCapped) {
  const fault::RetryPolicy p;  // defaults
  fault::start(4, fault::FaultPlan{}, 1234);
  std::vector<TimeNs> first;
  for (int a = 0; a < 10; ++a) {
    TimeNs b = fault::backoff(1, a);
    first.push_back(b);
    // Jitter keeps every delay within [50%, 100%] of the clamped target.
    TimeNs target = std::min<TimeNs>(p.backoff_base << a, p.backoff_cap);
    EXPECT_GE(b, target / 2) << "attempt " << a;
    EXPECT_LE(b, target) << "attempt " << a;
  }
  fault::stop();

  // Same seed -> identical schedule; it is a pure function of the session
  // seed, rank, and attempt.
  fault::start(4, fault::FaultPlan{}, 1234);
  for (int a = 0; a < 10; ++a) {
    EXPECT_EQ(fault::backoff(1, a), first[static_cast<std::size_t>(a)]);
  }
  fault::stop();
}

// ---- transient op fates at the pgas layer ----

TEST(FaultOps, DropReportsAndRetrySucceeds) {
  fault::start(2, fault::FaultPlan::parse("drop:op=get,rank=1,count=2"), 42);
  testing::run_sim(2, [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::uint64_t));
    auto* mine = reinterpret_cast<std::uint64_t*>(rt.seg_ptr(seg, rt.me()));
    *mine = 0xC0FFEE00u + static_cast<std::uint64_t>(rt.me());
    rt.barrier();
    if (rt.me() == 1) {
      std::uint64_t v = 0;
      // First two gets hit the drop rule.
      EXPECT_EQ(rt.get_checked(seg, 0, 0, &v, sizeof(v)), OpStatus::Dropped);
      EXPECT_EQ(rt.get_checked(seg, 0, 0, &v, sizeof(v)), OpStatus::Dropped);
      // Rule exhausted: the plain path works again.
      EXPECT_EQ(rt.get_checked(seg, 0, 0, &v, sizeof(v)), OpStatus::Ok);
      EXPECT_EQ(v, 0xC0FFEE00u);
    }
    rt.barrier();
    rt.seg_free(seg);
  });
  EXPECT_EQ(fault::summary().drops, 2);
  fault::stop();

  // Same rule, but the retry wrapper rides through it.
  fault::start(2, fault::FaultPlan::parse("drop:op=get,rank=1,count=2"), 42);
  testing::run_sim(2, [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::uint64_t));
    auto* mine = reinterpret_cast<std::uint64_t*>(rt.seg_ptr(seg, rt.me()));
    *mine = 77 + static_cast<std::uint64_t>(rt.me());
    rt.barrier();
    if (rt.me() == 1) {
      std::uint64_t v = 0;
      int attempts = 0;
      EXPECT_EQ(rt.get_with_retry(seg, 0, 0, &v, sizeof(v), &attempts),
                OpStatus::Ok);
      EXPECT_EQ(attempts, 3);
      EXPECT_EQ(v, 77u);
    }
    rt.barrier();
    rt.seg_free(seg);
  });
  fault::stop();
}

TEST(FaultOps, DelayChargesVirtualTime) {
  fault::start(2, fault::FaultPlan::parse("delay:op=get,rank=1,dur=50us"), 42);
  testing::run_sim(2, [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(8);
    rt.barrier();
    if (rt.me() == 1) {
      std::uint64_t v = 0;
      TimeNs t0 = rt.now();
      EXPECT_EQ(rt.get_checked(seg, 0, 0, &v, sizeof(v)), OpStatus::Ok);
      EXPECT_GE(rt.now() - t0, us(50));
    }
    rt.barrier();
    rt.seg_free(seg);
  });
  EXPECT_EQ(fault::summary().delays, 1);
  fault::stop();
}

// ---- C API knobs ----

TEST(FaultCApi, RetryKnobsRoundTrip) {
  const int limit0 = scioto_retry_limit();
  const int64_t cap0 = scioto_backoff_cap_ns();
  const int64_t base0 = scioto_backoff_base_ns();

  scioto_set_retry_limit(3);
  scioto_set_backoff_cap_ns(us(40));
  scioto_set_backoff_base_ns(us(1));
  EXPECT_EQ(scioto_retry_limit(), 3);
  EXPECT_EQ(scioto_backoff_cap_ns(), us(40));
  EXPECT_EQ(scioto_backoff_base_ns(), us(1));

  // The runtime actually honors the tightened limit: 5 queued drops defeat
  // a 3-attempt retry.
  fault::start(2, fault::FaultPlan::parse("drop:op=get,rank=1,count=5"), 42);
  testing::run_sim(2, [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(8);
    rt.barrier();
    if (rt.me() == 1) {
      std::uint64_t v = 0;
      int attempts = 0;
      EXPECT_EQ(rt.get_with_retry(seg, 0, 0, &v, sizeof(v), &attempts),
                OpStatus::Dropped);
      EXPECT_EQ(attempts, 3);
    }
    rt.barrier();
    rt.seg_free(seg);
  });
  fault::stop();

  scioto_set_retry_limit(limit0);
  scioto_set_backoff_cap_ns(cap0);
  scioto_set_backoff_base_ns(base0);
}

TEST(FaultCApi, PlanPassthroughValidates) {
  char err[128];
  EXPECT_EQ(scioto_fault_plan_set("kill:rank=1,at=3ms", err, sizeof(err)), 0);
  EXPECT_STREQ(scioto_fault_plan(), "kill:rank=1,at=3ms");
  const char* env = std::getenv("SCIOTO_FAULT_PLAN");
  ASSERT_NE(env, nullptr);
  EXPECT_STREQ(env, "kill:rank=1,at=3ms");

  // Malformed specs are rejected with a message and leave the staged plan
  // untouched.
  EXPECT_EQ(scioto_fault_plan_set("kill:at=3ms", err, sizeof(err)), -1);
  EXPECT_GT(std::string(err).size(), 0u);
  EXPECT_STREQ(scioto_fault_plan(), "kill:rank=1,at=3ms");

  EXPECT_EQ(scioto_fault_plan_set(nullptr, nullptr, 0), 0);
  EXPECT_STREQ(scioto_fault_plan(), "");
  EXPECT_EQ(std::getenv("SCIOTO_FAULT_PLAN"), nullptr);
}

// ---- recovery: the headline acceptance property ----

apps::UtsResult run_uts_with_faults(int nranks, const std::string& plan,
                                    std::uint64_t seed,
                                    const apps::UtsParams& tree) {
  fault::start(nranks, fault::FaultPlan::parse(plan), seed);
  apps::UtsResult res;
  testing::run_sim(
      nranks,
      [&](Runtime& rt) {
        apps::UtsRunConfig rc;
        res = apps::uts_run_scioto_ft(rt, tree, rc);
      },
      seed);
  fault::stop();
  return res;
}

TEST(FaultRecovery, UtsExactWithQuarterOfRanksKilled) {
  // 2 of 8 ranks (25%) die mid-traversal; survivors must adopt their
  // queued work and the total must match the sequential count exactly.
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  apps::UtsResult res = run_uts_with_faults(
      8, "kill:rank=2,at=400us;kill:rank=5,at=700us", 42, tree);
  EXPECT_EQ(res.survivors, 6);
  EXPECT_TRUE(res.counts == expected)
      << "counted " << res.counts.nodes << " nodes, expected "
      << expected.nodes;
}

TEST(FaultRecovery, UtsExactAcrossKillSchedules) {
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const char* plans[] = {
      "kill:rank=3,at=20us",
      "kill:rank=1,at=40us;kill:rank=2,at=45us",
      "kill:rank=0,at=30us",  // root rank dies too
  };
  for (const char* plan : plans) {
    apps::UtsResult res = run_uts_with_faults(4, plan, 7, tree);
    EXPECT_TRUE(res.counts == expected)
        << "plan '" << plan << "' counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
  }
}

#if SCIOTO_TRACE_ENABLED
TEST(FaultRecovery, SamePlanAndSeedReplaysByteIdenticalTrace) {
  const apps::UtsParams tree = apps::uts_tiny();
  const std::string plan = "kill:rank=2,at=50us";
  auto traced_run = [&]() {
    trace::start(4);
    (void)run_uts_with_faults(4, plan, 99, tree);
    std::vector<trace::Event> evs = trace::all_events();
    trace::stop();
    return evs;
  };
  std::vector<trace::Event> a = traced_run();
  std::vector<trace::Event> b = traced_run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << "event " << i;
    EXPECT_EQ(a[i].a, b[i].a) << "event " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "event " << i;
    EXPECT_EQ(a[i].c, b[i].c) << "event " << i;
    if (::testing::Test::HasFailure()) break;
  }
}
#endif  // SCIOTO_TRACE_ENABLED (replay diff reads the trace stream back)

TEST(FaultRecovery, StealTruncationAbortsButStaysExact) {
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  // The first three steal hand-offs deliver zero tasks (aborted steals);
  // traversal totals must be unaffected.
  apps::UtsResult res =
      run_uts_with_faults(4, "truncate:keep=0,count=3", 42, tree);
  EXPECT_TRUE(res.counts == expected);
  EXPECT_GE(res.stats.steals_aborted, 1u);
}

// ---- steal critical-section regression ----

// A thief stalled inside the victim-lock critical section (the PR 2
// lock-stall fault) used to hold the lock for the stolen chunk's full
// wire time as well; with deferred_steal_copy the chunk's RMA charge is
// paid after unlock, so the owner's blocked reacquire completes sooner by
// exactly that wire time. Measured on the sim backend, where both runs
// are deterministic and directly comparable.
TimeNs measure_owner_reacquire_wait(bool deferred) {
  constexpr TimeNs kStall = 200 * 1000;  // 200us stall inside the lock
  fault::start(2, fault::FaultPlan::parse("stall:rank=1,dur=200us"), 42);
  TimeNs wait = 0;
  testing::run_sim(2, [&](Runtime& rt) {
    SplitQueue::Config qc;
    qc.slot_bytes = 256;  // big slots so the chunk's wire time is visible
    qc.capacity = 1024;
    qc.chunk = 10;
    qc.mode = QueueMode::Split;
    qc.deferred_steal_copy = deferred;
    SplitQueue q(rt, qc);
    std::vector<std::byte> slot(qc.slot_bytes, std::byte{0});
    std::vector<std::byte> steal_buf(
        static_cast<std::size_t>(qc.chunk) * qc.slot_bytes);
    if (rt.me() == 0) {
      for (int i = 0; i < 40; ++i) {
        EXPECT_TRUE(q.push_local(slot.data(), kAffinityHigh));
      }
      EXPECT_EQ(q.release_maybe(), 20u);
    }
    rt.barrier();
    if (rt.me() == 1) {
      // First lock acquisition by rank 1 -> the stall rule fires while we
      // are inside the victim's critical section.
      EXPECT_EQ(q.steal_from(0, steal_buf.data()), qc.chunk);
    } else {
      // Give the thief a head start so it owns the lock, then try to
      // reacquire: we queue behind the stalled thief.
      rt.charge(5 * 1000);
      TimeNs t0 = rt.now();
      EXPECT_GT(q.reacquire(), 0u);
      wait = rt.now() - t0;
      EXPECT_GT(wait, kStall / 2);  // we really did block behind the stall
    }
    rt.barrier();
    q.destroy();
  });
  fault::stop();
  return wait;
}

TEST(FaultRecovery, DeferredStealCopyUnblocksOwnerReacquire) {
  TimeNs blocking = measure_owner_reacquire_wait(/*deferred=*/false);
  TimeNs deferred = measure_owner_reacquire_wait(/*deferred=*/true);
  // The critical section no longer carries the 10-slot chunk's RMA
  // charge, so the owner's wait must strictly shrink.
  EXPECT_LT(deferred, blocking)
      << "deferred=" << deferred << "ns blocking=" << blocking << "ns";
}

TEST(FaultRecovery, RecoveryCountersSurfaceInStats) {
  const apps::UtsParams tree = apps::uts_small();
  apps::UtsResult res = run_uts_with_faults(
      8, "kill:rank=3,at=400us;kill:rank=6,at=600us", 42, tree);
  // The termination tree must have seen at least one resplice per death
  // on some survivor.
  EXPECT_GE(res.stats.td_resplices, 2u);
}

// ---- queue-mode composition ----

// Unlocked steal protocols cannot anchor the steal-transaction log (the
// claim becomes visible with a CAS outside any critical section, so a
// thief death between claim and requeue would lose the chunk). Both the
// wait-free and the lockfree (SCIOTO_QUEUE=lockfree) modes must be
// rejected at INIT under an active fault session -- fail-fast with a
// clear error, never a silently non-recoverable run -- while the locked
// modes keep constructing under the very same session.
TEST(FaultComposition, UnlockedStealModesRejectedAtInit) {
  fault::start(1, fault::FaultPlan{}, 7);
  testing::run_sim(1, [&](Runtime& rt) {
    SplitQueue::Config qc;
    qc.mode = QueueMode::LockFree;
    EXPECT_THROW(SplitQueue(rt, qc), Error);
    qc.mode = QueueMode::WaitFreeSteal;
    EXPECT_THROW(SplitQueue(rt, qc), Error);

    // The documented user-facing path composes the same way: a task
    // collection switched to lockfree via the environment fails its
    // constructor under the session...
    ASSERT_EQ(setenv("SCIOTO_QUEUE", "lockfree", 1), 0);
    EXPECT_THROW(TaskCollection(rt, TcConfig{}), Error);
    // ...and the locked protocols (with and without aborting steals)
    // stay fully fault-composable.
    ASSERT_EQ(setenv("SCIOTO_QUEUE", "aborting", 1), 0);
    {
      TaskCollection tc(rt, TcConfig{});
      EXPECT_STREQ(queue_mode_name(tc.queue_mode()), "split");
      tc.destroy();
    }
    ASSERT_EQ(unsetenv("SCIOTO_QUEUE"), 0);
    SplitQueue::Config ok;  // default Split
    SplitQueue q(rt, ok);
    q.destroy();
  });
  fault::stop();
}

}  // namespace
}  // namespace scioto
