// Steal-contention stress tests on the real-threads backend: one victim,
// N-1 thieves hammering it with the full adaptive steal engine enabled
// (steal-half chunking, owner fast path, and -- per steal protocol under
// test -- blocking locked steals, aborting trylock steals, or the
// lockfree Chase-Lev CAS path). Runs under the CI TSan job (suite names
// carry "Threads" for its filter).
//
//   * Conservation: every task the victim produces is consumed exactly
//     once, by the victim itself or by exactly one thief -- checked with
//     an id-sum / id-square-sum fingerprint reduced over all ranks.
//   * Aborted steals are strictly read-only: while the victim holds its
//     own queue lock, every thief's steal must return kStealBusy and
//     leave the victim's entire patch (indices + every ring byte)
//     byte-identical, witnessed by a FNV hash before/after.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "scioto/queue.hpp"
#include "scioto/task.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

constexpr std::size_t kSlot = 16;
constexpr int kRanks = 8;

void make_slot(std::byte* buf, std::uint64_t id) {
  std::memset(buf, 0, kSlot);
  std::memcpy(buf, &id, sizeof(id));
}

std::uint64_t slot_id(const std::byte* buf) {
  std::uint64_t id;
  std::memcpy(&id, buf, sizeof(id));
  return id;
}

/// One steal protocol under stress. `locked` is the paper's blocking
/// chunked steal, `aborting` adds trylock + kStealBusy, `lockfree` is
/// the Chase-Lev tagged-CAS path (which has no lock to be busy on).
struct StressMode {
  const char* name;
  QueueMode mode;
  bool aborting;
};

constexpr StressMode kStressModes[] = {
    {"locked", QueueMode::Split, false},
    {"aborting", QueueMode::Split, true},
    {"lockfree", QueueMode::LockFree, false},
};

SplitQueue::Config stress_cfg(const StressMode& m) {
  SplitQueue::Config c;
  c.slot_bytes = kSlot;
  c.capacity = 4096;
  c.chunk = 4;
  c.mode = m.mode;
  c.release_threshold = 4;
  c.aborting_steals = m.aborting;
  c.adaptive_chunk = true;
  c.owner_fastpath = true;
  // The shrunken critical section only exists on the locked steal path.
  c.deferred_steal_copy = m.mode == QueueMode::Split;
  return c;
}

SplitQueue::Config stress_cfg() { return stress_cfg(kStressModes[1]); }

class StealStressModeThreads
    : public ::testing::TestWithParam<StressMode> {};

TEST_P(StealStressModeThreads, OneVictimManyThievesConservation) {
  constexpr std::uint64_t kTasks = 2000;
  testing::run_threads(kRanks, [&](Runtime& rt) {
    SplitQueue q(rt, stress_cfg(GetParam()));
    pgas::SegId flag_seg = rt.seg_alloc(64);
    auto* done =
        reinterpret_cast<std::atomic<std::uint64_t>*>(rt.seg_ptr(flag_seg, 0));
    if (rt.me() == 0) {
      done->store(0, std::memory_order_release);
    }
    rt.barrier();

    std::uint64_t count = 0, sum = 0, sumsq = 0;
    auto record = [&](std::uint64_t id) {
      ++count;
      sum += id;
      sumsq += id * id;
    };

    std::byte buf[kSlot];
    std::vector<std::byte> steal_buf(
        static_cast<std::size_t>(q.config().chunk) * kSlot);

    if (rt.me() == 0) {
      // Victim: produce kTasks, keep feeding the shared portion, consume
      // part of the stream itself (pops + fast-path reacquires race the
      // thieves the whole time).
      for (std::uint64_t id = 1; id <= kTasks; ++id) {
        make_slot(buf, id);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
        q.release_maybe();
        if (id % 3 == 0 && q.pop_local(buf)) {
          record(slot_id(buf));
        }
      }
      while (q.size() > 0) {
        q.release_maybe();
        if (q.pop_local(buf)) {
          record(slot_id(buf));
        } else if (q.reacquire() == 0) {
          rt.relax();
        }
      }
      done->store(1, std::memory_order_release);
    } else {
      // Thieves: steal until the victim says it is done AND its shared
      // portion is drained. kStealBusy means another thief (or the
      // owner's locked slow path) held the lock -- re-try, never convoy.
      std::uint64_t busy = 0;
      for (;;) {
        int got = q.steal_from(0, steal_buf.data());
        if (got > 0) {
          ASSERT_LE(got, q.config().chunk);
          for (int i = 0; i < got; ++i) {
            record(slot_id(steal_buf.data() +
                           static_cast<std::size_t>(i) * kSlot));
          }
          continue;
        }
        if (got == SplitQueue::kStealBusy) {
          EXPECT_TRUE(GetParam().aborting)
              << "kStealBusy from a non-aborting steal protocol";
          ++busy;
          continue;
        }
        if (done->load(std::memory_order_acquire) == 1 &&
            q.peek_shared(0) == 0) {
          break;
        }
        rt.relax();
      }
      EXPECT_EQ(q.counters().steals_lock_busy, busy);
      if (!GetParam().aborting) {
        EXPECT_EQ(busy, 0u);
      }
    }
    rt.barrier();

    // Exactly-once fingerprint: counts, id sum, and id square sum must all
    // match the closed forms for 1..kTasks (a dup + a loss that fool the
    // sum cannot also fool the square sum).
    std::uint64_t n = rt.allreduce_sum(count);
    std::uint64_t s = rt.allreduce_sum(sum);
    std::uint64_t s2 = rt.allreduce_sum(sumsq);
    std::uint64_t want_s = kTasks * (kTasks + 1) / 2;
    std::uint64_t want_s2 = kTasks * (kTasks + 1) * (2 * kTasks + 1) / 6;
    EXPECT_EQ(n, kTasks);
    EXPECT_EQ(s, want_s);
    EXPECT_EQ(s2, want_s2);

    rt.seg_free(flag_seg);
    q.destroy();
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, StealStressModeThreads,
                         ::testing::ValuesIn(kStressModes),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// Aborting-specific: the trylock bounce must be strictly read-only.
// Locked-only by construction (lockfree has no lock for the victim to
// sit on; its no-mutation guarantee is the failed-CAS path, stressed
// above and in test_queue_lockfree).
TEST(StealStressThreads, AbortedStealLeavesVictimByteIdentical) {
  testing::run_threads(kRanks, [&](Runtime& rt) {
    SplitQueue q(rt, stress_cfg());
    std::byte buf[kSlot];
    std::vector<std::byte> steal_buf(
        static_cast<std::size_t>(q.config().chunk) * kSlot);

    if (rt.me() == 0) {
      // Expose eight tasks, then sit on our own lock: every steal in the
      // window below must abort without touching the patch.
      for (std::uint64_t id = 100; id < 108; ++id) {
        make_slot(buf, id);
        ASSERT_TRUE(q.push_local(buf, kAffinityLow));
      }
      ASSERT_EQ(q.shared_size(), 8u);
      q.debug_lock_own();
    }
    rt.barrier();

    if (rt.me() != 0) {
      std::uint64_t before = q.debug_patch_hash(0);
      for (int attempt = 0; attempt < 4; ++attempt) {
        EXPECT_EQ(q.steal_from(0, steal_buf.data()), SplitQueue::kStealBusy);
        EXPECT_EQ(q.debug_patch_hash(0), before)
            << "aborted steal mutated the victim's patch";
      }
    }
    rt.barrier();

    if (rt.me() == 0) {
      q.debug_unlock_own();
    }
    rt.barrier();

    // With the lock released the same thieves drain all eight tasks; busy
    // aborts among contending thieves are fine, losing a task is not.
    std::uint64_t count = 0, sum = 0;
    if (rt.me() != 0) {
      while (q.peek_shared(0) > 0) {
        int got = q.steal_from(0, steal_buf.data());
        for (int i = 0; i < got; ++i) {
          std::uint64_t id =
              slot_id(steal_buf.data() + static_cast<std::size_t>(i) * kSlot);
          ++count;
          sum += id;
        }
      }
    }
    EXPECT_EQ(rt.allreduce_sum(count), 8u);
    EXPECT_EQ(rt.allreduce_sum(sum), 8u * (100 + 107) / 2);
    q.destroy();
  });
}

}  // namespace
}  // namespace scioto
