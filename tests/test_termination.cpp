// Tests for wave-based termination detection: liveness (always detects),
// safety (never detects early while work exists or is in flight), the
// dirty-marking rules, and the §5.3 token-coloring optimization.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "scioto/termination.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

class TdBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(TdBackends, ImmediateTerminationWhenNothingHappens) {
  for (int n : {1, 2, 3, 8, 17}) {
    testing::run(n, GetParam(), [&](Runtime& rt) {
      TerminationDetector td(rt);
      td.reset();
      int steps = 0;
      while (td.step() == TerminationDetector::Status::Working) {
        rt.relax();
        ASSERT_LT(++steps, 1000000) << "termination never detected, n=" << n;
      }
      rt.barrier();
      td.destroy();
    });
  }
}

TEST_P(TdBackends, ReusableAcrossPhases) {
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TerminationDetector td(rt);
    for (int phase = 0; phase < 3; ++phase) {
      td.reset();
      int steps = 0;
      while (td.step() == TerminationDetector::Status::Working) {
        rt.relax();
        ASSERT_LT(++steps, 1000000);
      }
      rt.barrier();
    }
    td.destroy();
  });
}

TEST_P(TdBackends, LbOpForcesBlackVoteAndRevote) {
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TerminationDetector td(rt);
    td.reset();
    // Rank 3 "moves work" once before going idle: at least one wave must
    // come back black, and detection still completes.
    if (rt.me() == 3) {
      td.note_lb_op(1);
    }
    int steps = 0;
    while (td.step() == TerminationDetector::Status::Working) {
      rt.relax();
      ASSERT_LT(++steps, 1000000);
    }
    auto sum = td.counters_sum();
    EXPECT_GE(sum.black_votes, 1u);
    td.destroy();
  });
}

// Safety harness: ranks stay "busy" for deterministic virtual spans and
// perform LB ops; the detector must not fire until every rank has finished
// its busy schedule.
TEST_P(TdBackends, NeverFiresWhileRanksAreBusy) {
  constexpr int kRanks = 6;
  std::atomic<int> busy_ranks{kRanks};
  std::atomic<bool> early{false};
  testing::run(kRanks, GetParam(), [&](Runtime& rt) {
    TerminationDetector td(rt);
    td.reset();
    // Deterministic staggered busy phases: rank r is busy for r rounds of
    // work; each round ends with an LB op against the next rank.
    for (int round = 0; round < rt.me(); ++round) {
      rt.charge(us(5));
      // Poll TD while "busy" is not allowed (protocol precondition), but
      // LB notes are.
      td.note_lb_op((rt.me() + 1) % rt.nprocs());
      if (GetParam() == BackendKind::Threads) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    busy_ranks.fetch_sub(1);
    int steps = 0;
    while (td.step() == TerminationDetector::Status::Working) {
      rt.relax();
      ASSERT_LT(++steps, 2000000);
    }
    if (busy_ranks.load() != 0) {
      early.store(true);
    }
    rt.barrier();
    td.destroy();
  });
  EXPECT_FALSE(early.load()) << "termination detected while ranks were busy";
}

TEST_P(TdBackends, ColoringOptimizationSkipsMarks) {
  // A rank that has NOT voted yet can always skip the dirty mark.
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TerminationDetector::Config cfg;
    cfg.color_optimization = true;
    TerminationDetector td(rt, cfg);
    td.reset();
    if (rt.me() == 2) {
      td.note_lb_op(0);  // before any vote: must be skipped
      EXPECT_EQ(td.counters().dirty_marks_sent, 0u);
      EXPECT_EQ(td.counters().dirty_marks_skipped, 1u);
    }
    int steps = 0;
    while (td.step() == TerminationDetector::Status::Working) {
      rt.relax();
      ASSERT_LT(++steps, 1000000);
    }
    td.destroy();
  });
}

TEST_P(TdBackends, WithoutOptimizationMarksAreSent) {
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TerminationDetector::Config cfg;
    cfg.color_optimization = false;
    TerminationDetector td(rt, cfg);
    td.reset();
    if (rt.me() == 2) {
      td.note_lb_op(0);
      EXPECT_EQ(td.counters().dirty_marks_sent, 1u);
      EXPECT_EQ(td.counters().dirty_marks_skipped, 0u);
    }
    int steps = 0;
    while (td.step() == TerminationDetector::Status::Working) {
      rt.relax();
      ASSERT_LT(++steps, 1000000);
    }
    td.destroy();
  });
}

TEST_P(TdBackends, DescendantRuleSkipsMark) {
  // Rank 0's descendants include every other rank; after rank 0 has voted
  // (only possible mid-protocol), marks toward descendants are skipped.
  // Here we verify the static is_descendant relation through behaviour:
  // rank 1 (child of 0) marking rank 3 (its own child) skips once voted;
  // we exercise the accounting by noting ops at both protocol stages.
  testing::run(7, GetParam(), [&](Runtime& rt) {
    TerminationDetector td(rt);
    td.reset();
    int steps = 0;
    while (td.step() == TerminationDetector::Status::Working) {
      rt.relax();
      ASSERT_LT(++steps, 1000000);
    }
    // After termination every rank has voted; marking a descendant now
    // must be skipped, a non-descendant must be sent.
    if (rt.me() == 1) {
      auto before = td.counters();
      td.note_lb_op(3);  // 3 is a child of 1 -> descendant -> skip
      EXPECT_EQ(td.counters().dirty_marks_skipped,
                before.dirty_marks_skipped + 1);
      td.note_lb_op(2);  // sibling subtree -> must mark
      EXPECT_EQ(td.counters().dirty_marks_sent, before.dirty_marks_sent + 1);
    }
    rt.barrier();
    td.destroy();
  });
}

// The §5.3 votes-before edge under failure: the victim votes white, a
// thief completes a steal against it, and the victim fail-stops before its
// re-vote (the dirty mark never lands). The stolen work is alive on the
// busy thief, so termination must NOT fire until the thief finishes --
// even though every pre-death vote in flight was white. Guarding this is
// what the per-epoch wave reset + forced black vote after a resplice are
// for.
TEST(TdFaultSim, VictimDeathAfterStealNeverFiresEarly) {
  constexpr int kRanks = 6;
  // Leaves of disjoint subtrees (3 under 1, 5 under 2): the victim's vote
  // must not depend on the thief's up-token, or the scripted interleaving
  // deadlocks before the steal.
  constexpr Rank kVictim = 3;
  constexpr Rank kThief = 5;
  std::atomic<bool> victim_voted{false};
  std::atomic<bool> stolen{false};
  std::atomic<bool> work_done{false};
  std::atomic<bool> early{false};
  // This test scripts an oracle death (mark_dead) around a bare
  // TerminationDetector: no HeartbeatProbe ever runs, so an env-armed
  // failure detector could never confirm the death and the survivors
  // would wait forever on the victim's subtree. Pin oracle mode here;
  // the detector-mode version of this property -- death learned through
  // heartbeat silence -- lives in tests/test_detect.cpp.
  ::unsetenv("SCIOTO_DETECTOR");
  fault::start(kRanks, fault::FaultPlan{}, 7);
  testing::run_sim(kRanks, [&](Runtime& rt) {
    TerminationDetector td(rt);
    td.reset();
    if (rt.me() == kVictim) {
      // Step until this rank has cast at least one (white) vote. Global
      // termination cannot complete yet: the thief has not voted.
      int steps = 0;
      while (td.counters().waves_voted == 0) {
        if (td.step() != TerminationDetector::Status::Working) {
          early.store(true);
          break;
        }
        rt.relax();
        ASSERT_LT(++steps, 1000000);
      }
      victim_voted.store(true);
      while (!stolen.load()) {
        rt.relax();
      }
      // Fail-stop before the §5.3 re-vote: just stop participating. No
      // barrier, no destroy -- survivors must cope.
      fault::mark_dead(kVictim);
      return;
    }
    if (rt.me() == kThief) {
      while (!victim_voted.load()) {
        rt.relax();
      }
      // Completed steal against a victim that already voted white this
      // wave; the thief now owns live work and stays out of detection
      // while executing it.
      td.note_lb_op(kVictim);
      stolen.store(true);
      for (int i = 0; i < 20; ++i) {
        rt.charge(us(50));
        rt.relax();
      }
      work_done.store(true);
    }
    int steps = 0;
    while (td.step() == TerminationDetector::Status::Working) {
      rt.relax();
      ASSERT_LT(++steps, 2000000);
    }
    if (!work_done.load()) {
      early.store(true);
    }
    rt.barrier();
    td.destroy();
  });
  fault::stop();
  EXPECT_FALSE(early.load())
      << "termination fired while the stolen work was still in flight";
}

TEST(TdSim, DetectionCostScalesLogarithmically) {
  // Virtual detection time should grow like log p, not linearly.
  auto detect_time = [](int n) {
    TimeNs t = 0;
    testing::run_sim(n, [&](Runtime& rt) {
      TerminationDetector td(rt);
      td.reset();
      rt.barrier();
      TimeNs t0 = rt.now();
      while (td.step() == TerminationDetector::Status::Working) {
        rt.relax();
      }
      TimeNs local = rt.now() - t0;
      TimeNs max = rt.allreduce_max(local);
      if (rt.me() == 0) t = max;
      td.destroy();
    });
    return t;
  };
  TimeNs t8 = detect_time(8);
  TimeNs t64 = detect_time(64);
  EXPECT_GT(t64, t8);
  // 8x the ranks must cost far less than 8x the time.
  EXPECT_LT(t64, 5 * t8);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TdBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return scioto::testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
