// Tests for the PGAS runtime: segments, one-sided data movement, RMW
// atomics, remote mutexes, collectives, and two-sided messaging -- run on
// both the sim and threads backends via TEST_P.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;
using testing::run;

class PgasBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(PgasBackends, IdentityAndSize) {
  std::atomic<int> seen{0};
  run(4, GetParam(), [&](Runtime& rt) {
    EXPECT_EQ(rt.nprocs(), 4);
    EXPECT_GE(rt.me(), 0);
    EXPECT_LT(rt.me(), 4);
    seen.fetch_add(1 << rt.me());
  });
  EXPECT_EQ(seen.load(), 0b1111);
}

TEST_P(PgasBackends, BroadcastFromEveryRoot) {
  run(5, GetParam(), [&](Runtime& rt) {
    for (Rank root = 0; root < rt.nprocs(); ++root) {
      int v = (rt.me() == root) ? 100 + root : -1;
      int out = rt.broadcast(v, root);
      EXPECT_EQ(out, 100 + root);
    }
  });
}

TEST_P(PgasBackends, AllreduceSumMinMax) {
  run(6, GetParam(), [&](Runtime& rt) {
    std::int64_t me = rt.me();
    EXPECT_EQ(rt.allreduce_sum(me), 0 + 1 + 2 + 3 + 4 + 5);
    EXPECT_EQ(rt.allreduce_min(me), 0);
    EXPECT_EQ(rt.allreduce_max(me), 5);
    double x = 0.5 * (rt.me() + 1);
    EXPECT_DOUBLE_EQ(rt.allreduce_sum(x), 0.5 + 1.0 + 1.5 + 2.0 + 2.5 + 3.0);
  });
}

TEST_P(PgasBackends, SegmentPutGetRoundTrip) {
  run(4, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(64);
    // Every rank writes a signature into its right neighbour's patch...
    Rank next = (rt.me() + 1) % rt.nprocs();
    std::int64_t sig = 1000 + rt.me();
    rt.put(seg, next, 8, &sig, sizeof(sig));
    rt.barrier();
    // ...and reads the one its left neighbour wrote into its own patch.
    std::int64_t got = 0;
    rt.get(seg, rt.me(), 8, &got, sizeof(got));
    Rank prev = (rt.me() + rt.nprocs() - 1) % rt.nprocs();
    EXPECT_EQ(got, 1000 + prev);
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, SegmentsZeroInitialized) {
  run(3, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(128);
    std::vector<std::byte> buf(128);
    for (Rank r = 0; r < rt.nprocs(); ++r) {
      rt.get(seg, r, 0, buf.data(), buf.size());
      for (std::byte b : buf) {
        ASSERT_EQ(b, std::byte{0});
      }
    }
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, FetchAddTotalsAcrossRanks) {
  constexpr int kIters = 200;
  run(4, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::int64_t));
    for (int i = 0; i < kIters; ++i) {
      rt.fetch_add(seg, /*target=*/0, 0, 1);
    }
    rt.barrier();
    std::int64_t total = 0;
    rt.get(seg, 0, 0, &total, sizeof(total));
    EXPECT_EQ(total, 4 * kIters);
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, FetchAddValuesAreUnique) {
  // NXTVAL semantics: every returned ticket is distinct.
  constexpr int kPer = 100;
  std::vector<std::vector<std::int64_t>> tickets(4);
  run(4, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::int64_t));
    auto& mine = tickets[static_cast<std::size_t>(rt.me())];
    for (int i = 0; i < kPer; ++i) {
      mine.push_back(rt.fetch_add(seg, 0, 0, 1));
    }
    rt.barrier();
    rt.seg_free(seg);
  });
  std::vector<std::int64_t> all;
  for (auto& v : tickets) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], static_cast<std::int64_t>(i));
  }
}

TEST_P(PgasBackends, SwapExchangesAtomically) {
  run(2, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::int64_t));
    rt.barrier();
    if (rt.me() == 1) {
      std::int64_t old = rt.swap(seg, 0, 0, 77);
      EXPECT_EQ(old, 0);
      old = rt.swap(seg, 0, 0, 88);
      EXPECT_EQ(old, 77);
    }
    rt.barrier();
    std::int64_t v = 0;
    rt.get(seg, 0, 0, &v, sizeof(v));
    EXPECT_EQ(v, 88);
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, AccIsAtomicUnderContention) {
  constexpr int kIters = 300;
  run(4, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(4 * sizeof(double));
    rt.barrier();
    double inc[4] = {1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < kIters; ++i) {
      rt.acc(seg, /*target=*/0, 0, inc, 4, 0.5);
    }
    rt.barrier();
    double out[4];
    rt.get(seg, 0, 0, out, sizeof(out));
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(out[j], 0.5 * inc[j] * kIters * rt.nprocs());
    }
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, LocksetProvidesMutualExclusion) {
  constexpr int kIters = 200;
  run(4, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::int64_t));
    pgas::LockSet ls = rt.lockset_create();
    rt.barrier();
    for (int i = 0; i < kIters; ++i) {
      rt.lock(ls, 0);
      // Unprotected read-modify-write: only correct under the lock.
      auto* p = reinterpret_cast<volatile std::int64_t*>(rt.seg_ptr(seg, 0));
      std::int64_t v = *p;
      *p = v + 1;
      rt.unlock(ls, 0);
    }
    rt.barrier();
    std::int64_t total = 0;
    rt.get(seg, 0, 0, &total, sizeof(total));
    EXPECT_EQ(total, 4 * kIters);
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, TrylockEventuallySucceedsAndExcludes) {
  run(3, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::int64_t));
    pgas::LockSet ls = rt.lockset_create();
    rt.barrier();
    int done = 0;
    while (done < 50) {
      if (rt.trylock(ls, 1)) {
        auto* p = reinterpret_cast<volatile std::int64_t*>(rt.seg_ptr(seg, 1));
        *p = *p + 1;
        rt.unlock(ls, 1);
        ++done;
      } else {
        rt.relax();
      }
    }
    rt.barrier();
    std::int64_t total = 0;
    rt.get(seg, 1, 0, &total, sizeof(total));
    EXPECT_EQ(total, 150);
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, SendRecvRing) {
  run(5, GetParam(), [&](Runtime& rt) {
    Rank next = (rt.me() + 1) % rt.nprocs();
    Rank prev = (rt.me() + rt.nprocs() - 1) % rt.nprocs();
    int payload = 42 + rt.me();
    rt.send(next, /*tag=*/7, &payload, sizeof(payload));
    int got = 0;
    pgas::MsgInfo info = rt.recv(prev, 7, &got, sizeof(got));
    EXPECT_EQ(got, 42 + prev);
    EXPECT_EQ(info.from, prev);
    EXPECT_EQ(info.tag, 7);
    EXPECT_EQ(info.bytes, sizeof(int));
  });
}

TEST_P(PgasBackends, RecvAnyRankAnyTag) {
  run(4, GetParam(), [&](Runtime& rt) {
    if (rt.me() != 0) {
      int v = rt.me() * 10;
      rt.send(0, rt.me(), &v, sizeof(v));
    } else {
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        int v = 0;
        pgas::MsgInfo info = rt.recv(pgas::kAnyRank, pgas::kAnyTag, &v,
                                     sizeof(v));
        EXPECT_EQ(v, info.from * 10);
        EXPECT_EQ(info.tag, info.from);
        sum += v;
      }
      EXPECT_EQ(sum, 10 + 20 + 30);
    }
  });
}

TEST_P(PgasBackends, IprobeSeesPendingMessage) {
  run(2, GetParam(), [&](Runtime& rt) {
    if (rt.me() == 1) {
      double x = 2.5;
      rt.send(0, 3, &x, sizeof(x));
      rt.barrier();
    } else {
      rt.barrier();  // message definitely sent now
      pgas::MsgInfo info;
      // Under sim the arrival may still be in the future; poll.
      int guard = 0;
      while (!rt.iprobe(pgas::kAnyRank, 3, &info)) {
        rt.relax();
        ASSERT_LT(++guard, 1000000) << "iprobe never saw the message";
      }
      EXPECT_EQ(info.from, 1);
      EXPECT_EQ(info.bytes, sizeof(double));
      double x = 0;
      EXPECT_TRUE(rt.try_recv(1, 3, &x, sizeof(x), nullptr));
      EXPECT_DOUBLE_EQ(x, 2.5);
      // Queue is drained now.
      EXPECT_FALSE(rt.iprobe(pgas::kAnyRank, pgas::kAnyTag, nullptr));
    }
  });
}

TEST_P(PgasBackends, MessagesFromSameSenderStayOrdered) {
  run(2, GetParam(), [&](Runtime& rt) {
    constexpr int kMsgs = 50;
    if (rt.me() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        rt.send(1, 9, &i, sizeof(i));
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int v = -1;
        rt.recv(0, 9, &v, sizeof(v));
        ASSERT_EQ(v, i);
      }
    }
  });
}

TEST_P(PgasBackends, StridedPutGetRoundTrip) {
  run(2, GetParam(), [&](Runtime& rt) {
    // Target patch modeled as a 4x8 double matrix in rank 1's segment.
    pgas::SegId seg = rt.seg_alloc(4 * 8 * sizeof(double));
    rt.barrier();
    if (rt.me() == 0) {
      // Write a 3x2 sub-block at (1, 3) from a buffer with ld 5.
      double src[3 * 5] = {};
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 2; ++c) {
          src[r * 5 + c] = 10.0 * r + c;
        }
      }
      rt.put_strided(seg, 1, (1 * 8 + 3) * sizeof(double),
                     8 * sizeof(double), 3, 2 * sizeof(double), src,
                     5 * sizeof(double));
      // Read it back with a different destination stride.
      double dst[3 * 4] = {};
      rt.get_strided(seg, 1, (1 * 8 + 3) * sizeof(double),
                     8 * sizeof(double), 3, 2 * sizeof(double), dst,
                     4 * sizeof(double));
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 2; ++c) {
          EXPECT_DOUBLE_EQ(dst[r * 4 + c], 10.0 * r + c);
        }
      }
    }
    rt.barrier();
    // Untouched elements stay zero.
    double v = -1;
    rt.get(seg, 1, 0, &v, sizeof(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
    rt.barrier();
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, FenceCompletesOutstandingPuts) {
  run(3, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(16);
    if (rt.me() == 1) {
      std::int64_t v = 4242;
      rt.put(seg, 2, 0, &v, sizeof(v));
      rt.fence(2);
      // Post-fence the value is globally visible; signal rank 2.
      rt.send(2, 5, &v, sizeof(v));
    } else if (rt.me() == 2) {
      std::int64_t sig;
      rt.recv(1, 5, &sig, sizeof(sig));
      std::int64_t got = 0;
      rt.get(seg, 2, 0, &got, sizeof(got));
      EXPECT_EQ(got, 4242);
    }
    rt.barrier();
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, RmwCostsMoreThanPlainRmaUnderSim) {
  if (GetParam() != BackendKind::Sim) {
    GTEST_SKIP() << "cost model is sim-only";
  }
  run(2, GetParam(), [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(64);
    rt.barrier();
    if (rt.me() == 1) {
      TimeNs t0 = rt.now();
      std::int64_t v = 1;
      for (int i = 0; i < 20; ++i) {
        rt.put(seg, 0, 0, &v, sizeof(v));
      }
      TimeNs put_time = rt.now() - t0;
      t0 = rt.now();
      for (int i = 0; i < 20; ++i) {
        rt.fetch_add(seg, 0, 8, 1);
      }
      TimeNs rmw_time = rt.now() - t0;
      // Host-assisted atomics occupy the target longer than plain puts.
      EXPECT_GT(rmw_time, put_time);
    }
    rt.barrier();
    rt.seg_free(seg);
  });
}

TEST_P(PgasBackends, ExceptionInRankPropagates) {
  EXPECT_THROW(
      run(3, GetParam(),
          [&](Runtime& rt) {
            if (rt.me() == 2) {
              throw Error("rank 2 failed");
            }
            // Other ranks exit normally (no collectives after the throw).
          }),
      Error);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PgasBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return testing::backend_name(info.param);
                         });

// ---- Sim-specific behaviours ----

TEST(PgasSim, RemoteOpsCostVirtualTime) {
  std::vector<TimeNs> local_t(2), remote_t(2);
  testing::run_sim(2, [&](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(1024);
    rt.barrier();
    std::int64_t v = 1;
    TimeNs t0 = rt.now();
    rt.put(seg, rt.me(), 0, &v, sizeof(v));
    local_t[static_cast<std::size_t>(rt.me())] = rt.now() - t0;
    t0 = rt.now();
    rt.put(seg, 1 - rt.me(), 8, &v, sizeof(v));
    remote_t[static_cast<std::size_t>(rt.me())] = rt.now() - t0;
    rt.barrier();
    rt.seg_free(seg);
  });
  // Local puts are free; remote ones pay latency + service.
  EXPECT_EQ(local_t[0], 0);
  EXPECT_GT(remote_t[0], 2 * sim::test_machine().rma_latency - 1);
}

TEST(PgasSim, DeterministicElapsed) {
  auto body = [](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(256);
    pgas::LockSet ls = rt.lockset_create();
    for (int i = 0; i < 20; ++i) {
      rt.lock(ls, (rt.me() + i) % rt.nprocs());
      rt.charge(100);
      rt.unlock(ls, (rt.me() + i) % rt.nprocs());
    }
    rt.seg_free(seg);
  };
  TimeNs a = testing::run_sim(6, body);
  TimeNs b = testing::run_sim(6, body);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

TEST(PgasSim, HotCounterSerializesThroughHomeRank) {
  // All ranks hammer one counter: total virtual time must scale with the
  // number of ops (they serialize through the home's RMA service queue),
  // unlike independent counters.
  auto hot = testing::run_sim(8, [](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::int64_t));
    for (int i = 0; i < 50; ++i) {
      rt.fetch_add(seg, 0, 0, 1);
    }
    rt.barrier();
    rt.seg_free(seg);
  });
  auto spread = testing::run_sim(8, [](Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(sizeof(std::int64_t));
    for (int i = 0; i < 50; ++i) {
      rt.fetch_add(seg, rt.me(), 0, 1);  // each rank its own location
    }
    rt.barrier();
    rt.seg_free(seg);
  });
  EXPECT_GT(hot, spread);
}

}  // namespace
}  // namespace scioto
