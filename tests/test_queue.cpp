// Tests for the split task queue: LIFO local semantics, release/reacquire
// split-pointer moves, steal correctness (no task lost or duplicated),
// affinity ordering, capacity handling, and the no-split ablation -- on
// both backends.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <set>
#include <vector>

#include "scioto/queue.hpp"
#include "scioto/task.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

constexpr std::size_t kSlot = 32;

SplitQueue::Config qcfg(std::uint64_t cap = 1024, int chunk = 4,
                        QueueMode mode = QueueMode::Split) {
  SplitQueue::Config c;
  c.slot_bytes = kSlot;
  c.capacity = cap;
  c.chunk = chunk;
  c.mode = mode;
  c.release_threshold = 2 * static_cast<std::uint64_t>(chunk);
  return c;
}

void make_slot(std::byte* buf, std::uint64_t id) {
  std::memset(buf, 0, kSlot);
  std::memcpy(buf, &id, sizeof(id));
}

std::uint64_t slot_id(const std::byte* buf) {
  std::uint64_t id;
  std::memcpy(&id, buf, sizeof(id));
  return id;
}

class QueueBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(QueueBackends, LocalPushPopIsLifo) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg());
    std::byte buf[kSlot];
    for (std::uint64_t i = 0; i < 10; ++i) {
      make_slot(buf, i);
      ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
    }
    EXPECT_EQ(q.size(), 10u);
    for (std::uint64_t i = 10; i-- > 0;) {
      ASSERT_TRUE(q.pop_local(buf));
      EXPECT_EQ(slot_id(buf), i);
    }
    EXPECT_FALSE(q.pop_local(buf));
    EXPECT_TRUE(q.empty());
    q.destroy();
  });
}

TEST_P(QueueBackends, ReleaseMovesOldestTasksToShared) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/4));
    std::byte buf[kSlot];
    // Push 10; release threshold is 8, so release_maybe moves half.
    for (std::uint64_t i = 0; i < 10; ++i) {
      make_slot(buf, i);
      ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
    }
    EXPECT_EQ(q.shared_size(), 0u);
    std::uint64_t released = q.release_maybe();
    EXPECT_EQ(released, 5u);
    EXPECT_EQ(q.shared_size(), 5u);
    EXPECT_EQ(q.private_size(), 5u);
    // Private pops still get the newest tasks.
    ASSERT_TRUE(q.pop_local(buf));
    EXPECT_EQ(slot_id(buf), 9u);
    q.destroy();
  });
}

TEST_P(QueueBackends, ReacquirePullsSharedBack) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg());
    std::byte buf[kSlot];
    for (std::uint64_t i = 0; i < 12; ++i) {
      make_slot(buf, i);
      ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
    }
    q.release_maybe();
    // Drain the private portion.
    while (q.pop_local(buf)) {
    }
    EXPECT_EQ(q.private_size(), 0u);
    EXPECT_GT(q.shared_size(), 0u);
    std::uint64_t got = q.reacquire();
    EXPECT_GT(got, 0u);
    EXPECT_EQ(q.private_size(), got);
    ASSERT_TRUE(q.pop_local(buf));
    q.destroy();
  });
}

TEST_P(QueueBackends, LowAffinityEntersStealEnd) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/1));
    std::byte buf[kSlot];
    if (rt.me() == 0) {
      make_slot(buf, 111);  // low affinity: should be stolen first
      ASSERT_TRUE(q.push_local(buf, kAffinityLow));
      make_slot(buf, 222);  // high affinity
      ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
      // Low-affinity task is immediately in the shared portion.
      EXPECT_GE(q.shared_size(), 1u);
    }
    rt.barrier();
    if (rt.me() == 1) {
      std::byte out[kSlot];
      int n = q.steal_from(0, out);
      ASSERT_EQ(n, 1);
      EXPECT_EQ(slot_id(out), 111u);  // the low-affinity one migrated
    }
    rt.barrier();
    if (rt.me() == 0) {
      ASSERT_TRUE(q.pop_local(buf));
      EXPECT_EQ(slot_id(buf), 222u);  // high-affinity stayed home
    }
    rt.barrier();
    q.destroy();
  });
}

TEST_P(QueueBackends, StealTakesChunkFromOldestEnd) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/3));
    std::byte buf[kSlot];
    if (rt.me() == 0) {
      for (std::uint64_t i = 0; i < 10; ++i) {
        make_slot(buf, i);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
      }
      q.release_maybe();  // expose oldest half for stealing
    }
    rt.barrier();
    if (rt.me() == 1) {
      std::byte out[3 * kSlot];
      int n = q.steal_from(0, out);
      ASSERT_EQ(n, 3);
      // Oldest tasks (0,1,2) move, in order.
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(slot_id(out + i * kSlot), static_cast<std::uint64_t>(i));
      }
      EXPECT_EQ(q.peek_shared(0), 2u);  // 5 shared - 3 stolen
    }
    rt.barrier();
    q.destroy();
  });
}

TEST_P(QueueBackends, StealFromEmptyReturnsZero) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg());
    rt.barrier();
    if (rt.me() == 1) {
      std::byte out[4 * kSlot];
      EXPECT_EQ(q.peek_shared(0), 0u);
      EXPECT_EQ(q.steal_from(0, out), 0);
    }
    rt.barrier();
    q.destroy();
  });
}

TEST_P(QueueBackends, RemoteAddLandsAtStealEnd) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/2));
    std::byte buf[kSlot];
    if (rt.me() == 1) {
      make_slot(buf, 999);
      ASSERT_TRUE(q.add_remote(0, buf));
    }
    rt.barrier();
    if (rt.me() == 0) {
      // Remote adds are visible in the shared portion (stealable) and
      // reachable locally via reacquire.
      EXPECT_EQ(q.shared_size(), 1u);
      EXPECT_EQ(q.reacquire(), 1u);
      ASSERT_TRUE(q.pop_local(buf));
      EXPECT_EQ(slot_id(buf), 999u);
    }
    rt.barrier();
    q.destroy();
  });
}

TEST_P(QueueBackends, CapacityEnforced) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(/*cap=*/8));
    std::byte buf[kSlot];
    for (std::uint64_t i = 0; i < 8; ++i) {
      make_slot(buf, i);
      ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
    }
    EXPECT_FALSE(q.push_local(buf, kAffinityHigh));
    // Draining one slot re-enables pushing.
    ASSERT_TRUE(q.pop_local(buf));
    EXPECT_TRUE(q.push_local(buf, kAffinityHigh));
    q.destroy();
  });
}

TEST_P(QueueBackends, WrapAroundPreservesContents) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(/*cap=*/16));
    std::byte buf[kSlot];
    std::uint64_t next_id = 0;
    // Cycle push/pop far past the capacity to force index wrap.
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 10; ++i) {
        make_slot(buf, next_id++);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
      }
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(q.pop_local(buf));
        EXPECT_EQ(slot_id(buf), next_id - 1 - static_cast<std::uint64_t>(i));
      }
    }
    EXPECT_TRUE(q.empty());
    q.destroy();
  });
}

TEST_P(QueueBackends, ResetEmptiesAllQueues) {
  testing::run(3, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg());
    std::byte buf[kSlot];
    make_slot(buf, static_cast<std::uint64_t>(rt.me()));
    ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
    q.reset_collective();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.pop_local(buf));
    q.destroy();
  });
}

TEST_P(QueueBackends, NoSplitModeStillMovesTasks) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/2, QueueMode::NoSplit));
    std::byte buf[kSlot];
    if (rt.me() == 0) {
      for (std::uint64_t i = 0; i < 6; ++i) {
        make_slot(buf, i);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
      }
      // Without split queues every task is immediately stealable.
      EXPECT_EQ(q.peek_shared(0), 6u);
    }
    rt.barrier();
    if (rt.me() == 1) {
      std::byte out[2 * kSlot];
      EXPECT_EQ(q.steal_from(0, out), 2);
      EXPECT_EQ(slot_id(out), 0u);
      EXPECT_EQ(slot_id(out + kSlot), 1u);
    }
    rt.barrier();
    if (rt.me() == 0) {
      ASSERT_TRUE(q.pop_local(buf));
      EXPECT_EQ(slot_id(buf), 5u);  // LIFO from the other end
    }
    rt.barrier();
    q.destroy();
  });
}

// ---- Wait-free steal mode (§8) ----

TEST_P(QueueBackends, WaitFreeStealMovesTasks) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/3, QueueMode::WaitFreeSteal));
    std::byte buf[kSlot];
    if (rt.me() == 0) {
      for (std::uint64_t i = 0; i < 10; ++i) {
        make_slot(buf, i);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
      }
      q.release_maybe();
    }
    rt.barrier();
    if (rt.me() == 1) {
      std::byte out[3 * kSlot];
      int n = q.steal_from(0, out);
      ASSERT_EQ(n, 3);
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(slot_id(out + i * kSlot), static_cast<std::uint64_t>(i));
      }
    }
    rt.barrier();
    q.destroy();
  });
}

TEST_P(QueueBackends, WaitFreeReacquireIsSelfSteal) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/4, QueueMode::WaitFreeSteal));
    std::byte buf[kSlot];
    for (std::uint64_t i = 0; i < 12; ++i) {
      make_slot(buf, i);
      ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
    }
    q.release_maybe();
    while (q.pop_local(buf)) {
    }
    EXPECT_GT(q.shared_size(), 0u);
    std::uint64_t got = q.reacquire();
    EXPECT_GT(got, 0u);
    // Reclaimed tasks are in the private portion again.
    EXPECT_EQ(q.private_size(), got);
    ASSERT_TRUE(q.pop_local(buf));
    q.destroy();
  });
}

TEST_P(QueueBackends, WaitFreeRemoteAddVisibleToOwnerAndThieves) {
  testing::run(3, GetParam(), [&](Runtime& rt) {
    SplitQueue q(rt, qcfg(1024, /*chunk=*/2, QueueMode::WaitFreeSteal));
    std::byte buf[kSlot];
    if (rt.me() == 1) {
      make_slot(buf, 777);
      ASSERT_TRUE(q.add_remote(0, buf));
    }
    rt.barrier();
    if (rt.me() == 2) {
      std::byte out[2 * kSlot];
      int n = q.steal_from(0, out);
      ASSERT_EQ(n, 1);
      EXPECT_EQ(slot_id(out), 777u);
    }
    rt.barrier();
    EXPECT_EQ(q.peek_shared(0), 0u);
    rt.barrier();
    q.destroy();
  });
}

// Threads-only stress: many concurrent lock-free thieves against one
// producer; the CAS protocol must neither lose nor duplicate tasks even
// under real races (this is where torn-copy discards actually trigger).
TEST(QueueWaitFree, ConcurrentThievesStress) {
  constexpr std::uint64_t kTasks = 3000;
  std::mutex m;
  std::set<std::uint64_t> taken;
  std::atomic<std::uint64_t> dups{0};
  testing::run_threads(6, [&](Runtime& rt) {
    auto c = qcfg(8192, /*chunk=*/3, QueueMode::WaitFreeSteal);
    c.release_threshold = 1;
    SplitQueue q(rt, c);
    std::byte buf[kSlot];
    if (rt.me() == 0) {
      for (std::uint64_t i = 0; i < kTasks; ++i) {
        make_slot(buf, i);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
        q.release_maybe();
      }
      // Expose the rest.
      while (q.release_maybe() > 0) {
      }
      // Drain own private leftovers through the normal path.
      while (true) {
        bool any = false;
        while (q.pop_local(buf)) {
          std::lock_guard<std::mutex> g(m);
          if (!taken.insert(slot_id(buf)).second) dups.fetch_add(1);
          any = true;
        }
        if (q.reacquire() == 0 && !any) break;
      }
    } else {
      std::byte out[3 * kSlot];
      for (;;) {
        int n = q.steal_from(0, out);
        for (int i = 0; i < n; ++i) {
          std::lock_guard<std::mutex> g(m);
          if (!taken.insert(slot_id(out + i * kSlot)).second) {
            dups.fetch_add(1);
          }
        }
        {
          std::lock_guard<std::mutex> g(m);
          if (taken.size() >= kTasks) break;
        }
        rt.relax();
      }
    }
    rt.barrier();
    q.destroy();
  });
  EXPECT_EQ(dups.load(), 0u);
  EXPECT_EQ(taken.size(), kTasks);
}

// Property test: under concurrent producer/thief traffic, every task is
// transferred exactly once -- nothing lost, nothing duplicated -- in every
// queue mode.
class QueueStealProperty
    : public ::testing::TestWithParam<
          std::tuple<BackendKind, int, int, QueueMode>> {};

TEST_P(QueueStealProperty, NoLossNoDuplication) {
  auto [kind, nranks, chunk, mode] = GetParam();
  constexpr std::uint64_t kTasks = 400;
  std::mutex m;
  std::set<std::uint64_t> executed;
  std::uint64_t duplicates = 0;

  testing::run(nranks, kind, [&, chunk = chunk, mode = mode](Runtime& rt) {
    auto c = qcfg(4096, chunk, mode);
    SplitQueue q(rt, c);
    std::byte buf[kSlot];
    if (rt.me() == 0) {
      for (std::uint64_t i = 0; i < kTasks; ++i) {
        make_slot(buf, i);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
        q.release_maybe();
      }
    }
    rt.barrier();
    // Everyone (including rank 0) consumes: rank 0 pops/reacquires, others
    // steal chunks until the global count is reached.
    auto consume = [&](const std::byte* slot_buf) {
      std::lock_guard<std::mutex> g(m);
      if (!executed.insert(slot_id(slot_buf)).second) {
        ++duplicates;
      }
    };
    int idle_spins = 0;
    while (true) {
      bool progressed = false;
      if (rt.me() == 0) {
        if (q.pop_local(buf)) {
          consume(buf);
          progressed = true;
        } else if (q.reacquire() > 0) {
          progressed = true;
        }
      } else {
        std::vector<std::byte> out(static_cast<std::size_t>(chunk) * kSlot);
        int n = q.steal_from(0, out.data());
        for (int i = 0; i < n; ++i) {
          consume(out.data() + static_cast<std::size_t>(i) * kSlot);
        }
        progressed = n > 0;
      }
      if (progressed) {
        idle_spins = 0;
        continue;
      }
      {
        std::lock_guard<std::mutex> g(m);
        if (executed.size() >= kTasks) break;
      }
      rt.relax();
      // Rank 0 may have drained its private portion while tasks remain
      // shared; keep spinning -- bounded by the global count check.
      if (++idle_spins > 2000000) {
        FAIL() << "no progress: likely lost tasks";
        break;
      }
    }
    rt.barrier();
    q.destroy();
  });

  EXPECT_EQ(duplicates, 0u);
  EXPECT_EQ(executed.size(), kTasks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueStealProperty,
    ::testing::Combine(::testing::Values(BackendKind::Sim,
                                         BackendKind::Threads),
                       ::testing::Values(2, 4, 7),
                       ::testing::Values(1, 5, 16),
                       ::testing::Values(QueueMode::Split, QueueMode::NoSplit,
                                         QueueMode::WaitFreeSteal,
                                         QueueMode::LockFree)),
    [](const auto& info) {
      std::string mode;
      switch (std::get<3>(info.param)) {
        case QueueMode::Split: mode = "split"; break;
        case QueueMode::NoSplit: mode = "nosplit"; break;
        case QueueMode::WaitFreeSteal: mode = "wf"; break;
        case QueueMode::LockFree: mode = "lockfree"; break;
      }
      return scioto::testing::backend_name(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_" + mode;
    });

INSTANTIATE_TEST_SUITE_P(AllBackends, QueueBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return scioto::testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
