// Ablation: locked vs wait-free steals (the paper's §8 "wait-free
// implementations of the distributed task collection").
//
// Under the locked design a thief can wait behind another thief (and
// behind the victim's own locked operations); the wait-free variant
// publishes a whole stolen chunk with one CAS, so thieves never block each
// other. The effect shows where steal traffic concentrates: many ranks
// draining one victim.
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"

using namespace scioto;
using namespace scioto::apps;

int main(int argc, char** argv) {
  Options opts("bench_ablation_wf_steals",
               "locked vs wait-free (CAS) steal path on UTS");
  opts.add_int("scale", 11, "geometric tree depth");
  opts.add_flag("aborting", true, "adaptive-engine row: trylock-abort steals");
  opts.add_flag("adaptive", true, "adaptive-engine row: steal-half chunking");
  if (!opts.parse(argc, argv)) return 0;

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsCounts expected = uts_sequential(tree);
  std::printf("workload: %s, %llu nodes (heterogeneous cluster)\n",
              uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes));

  // Two atomics regimes: the 2008 cluster's host-assisted AMOs (CAS costs
  // a 2 us target-side service slot) vs a NIC-offloaded AMO (CAS as cheap
  // as any RMA) -- the hardware the §8 plan was anticipating.
  sim::MachineModel host_amo = sim::cluster2008();
  sim::MachineModel nic_amo = sim::cluster2008();
  nic_amo.rmw_service = nic_amo.rma_service;

  // The adaptive steal engine is the locked design's answer to the same
  // convoying problem the wait-free path attacks: thieves abort instead of
  // blocking, and the owner publishes split moves without the lock.
  auto run_one = [&](int p, const sim::MachineModel& m, QueueMode mode,
                     bool adaptive_engine) {
    pgas::Config cfg;
    cfg.nranks = p;
    cfg.backend = pgas::BackendKind::Sim;
    cfg.machine = m;
    UtsResult res;
    pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
      UtsRunConfig rc;
      rc.queue_mode = mode;
      if (adaptive_engine) {
        rc.aborting_steals = opts.get_flag("aborting");
        rc.adaptive_steal = opts.get_flag("adaptive");
        rc.owner_fastpath = true;
        rc.deferred_steal_copy = true;
      }
      res = uts_run_scioto(rt, tree, rc);
    });
    SCIOTO_CHECK_MSG(res.counts == expected, "traversal mismatch");
    return res;
  };

  Table t({"Procs", "Locked(Mn/s)", "Adaptive(Mn/s)", "WF-HostAMO(Mn/s)",
           "WF-NicAMO(Mn/s)", "WF-NicAMO/Locked", "Busy", "Retargets"});
  for (int p : {8, 16, 32, 64}) {
    UtsResult locked = run_one(p, host_amo, QueueMode::Split, false);
    UtsResult adaptive = run_one(p, host_amo, QueueMode::Split, true);
    UtsResult wf_host = run_one(p, host_amo, QueueMode::WaitFreeSteal, false);
    UtsResult wf_nic = run_one(p, nic_amo, QueueMode::WaitFreeSteal, false);
    t.add_row({Table::fmt(std::int64_t{p}),
               Table::fmt(locked.mnodes_per_sec, 2),
               Table::fmt(adaptive.mnodes_per_sec, 2),
               Table::fmt(wf_host.mnodes_per_sec, 2),
               Table::fmt(wf_nic.mnodes_per_sec, 2),
               Table::fmt(wf_nic.mnodes_per_sec / locked.mnodes_per_sec,
                          3),
               Table::fmt(static_cast<std::int64_t>(
                   adaptive.stats.steals_lock_busy)),
               Table::fmt(static_cast<std::int64_t>(
                   adaptive.stats.steal_retargets))});
  }
  t.print("Ablation: §8 wait-free steal path vs the locked shared portion "
          "(UTS). Host-assisted atomics make CAS steals a wash; "
          "NIC-offloaded atomics are the hardware the idea anticipates.");
  return 0;
}
