// Table 1 reproduction: microbenchmark timings for core task-collection
// operations (paper §6.1).
//
// "Results ... were collected using a task body size of 1kB and a chunk
// size of 10." We time the same four operations on the split queue, under
// the simulated cluster and Cray XT4 machine models, and print them next
// to the paper's measurements:
//
//              Operation     Cluster     Cray XT4
//              Local Insert  0.4952 us   0.9330 us
//              Remote Insert 18.0819 us  27.018 us
//              Local Get     0.3613 us   0.6913 us
//              Remote Steal  29.0080 us  32.384 us
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "base/options.hpp"
#include "base/table.hpp"
#include "metrics/metrics.hpp"
#include "pgas/runtime.hpp"
#include "scioto/queue.hpp"
#include "scioto/task.hpp"

using namespace scioto;

namespace {

struct OpTimes {
  double local_insert_us = 0;
  double remote_insert_us = 0;
  double local_get_us = 0;
  double remote_steal_us = 0;
};

/// Full op-latency distributions from the live metrics histograms (the
/// mean-only Table 1 numbers hide the tail the telemetry plane exposes).
struct OpHists {
  metrics::HistSnap push;   // rank 0's local pushes
  metrics::HistSnap pop;    // rank 0's local pops
  metrics::HistSnap steal;  // rank 1's remote steals
  bool valid = false;
};

OpTimes measure(const sim::MachineModel& machine, int iters,
                OpHists* hists) {
  OpTimes out;
  pgas::Config cfg;
  cfg.nranks = 2;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = machine;
  // Bench-owned metrics session: run_spmd sees an already-active session
  // and leaves it alone, so we can scrape the histograms after the run.
  if (hists != nullptr) {
    metrics::start(cfg.nranks);
  }

  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    SplitQueue::Config qc;
    qc.slot_bytes = align_up(sizeof(TaskHeader) + 1024, 8);  // 1 kB body
    qc.capacity = static_cast<std::uint64_t>(iters) * 16;
    qc.chunk = 10;
    SplitQueue q(rt, qc);
    std::vector<std::byte> task(qc.slot_bytes, std::byte{7});
    std::vector<std::byte> steal_buf(qc.slot_bytes * 10);

    // --- Local insert / local get (rank 0, lock-free path) ---
    if (rt.me() == 0) {
      TimeNs t0 = rt.now();
      for (int i = 0; i < iters; ++i) {
        SCIOTO_CHECK(q.push_local(task.data(), kAffinityHigh));
      }
      out.local_insert_us = to_us(rt.now() - t0) / iters;
      t0 = rt.now();
      for (int i = 0; i < iters; ++i) {
        SCIOTO_CHECK(q.pop_local(task.data()));
      }
      out.local_get_us = to_us(rt.now() - t0) / iters;
    }
    rt.barrier();

    // --- Remote insert (rank 1 adds into rank 0's patch) ---
    if (rt.me() == 1) {
      TimeNs t0 = rt.now();
      for (int i = 0; i < iters; ++i) {
        SCIOTO_CHECK(q.add_remote(0, task.data()));
      }
      out.remote_insert_us = to_us(rt.now() - t0) / iters;
    }
    rt.barrier();
    q.reset_collective();

    // --- Remote steal (rank 1 steals 10-task chunks from rank 0) ---
    if (rt.me() == 0) {
      for (int i = 0; i < iters * 10; ++i) {
        SCIOTO_CHECK(q.push_local(task.data(), kAffinityHigh));
      }
      // Expose everything for stealing.
      while (q.release_maybe() > 0) {
      }
      // release_maybe stops once the shared side looks full; force the
      // rest across for a pure steal measurement.
      while (q.private_size() > 0) {
        if (q.release_maybe() == 0) break;
      }
    }
    rt.barrier();
    if (rt.me() == 1) {
      TimeNs t0 = rt.now();
      int got = 0;
      int steals = 0;
      while (got < iters * 10) {
        int n = q.steal_from(0, steal_buf.data());
        if (n == 0) break;
        got += n;
        ++steals;
      }
      if (steals > 0) {
        out.remote_steal_us = to_us(rt.now() - t0) / steals;
      }
    }
    rt.barrier();
    q.destroy();
  });
  if (hists != nullptr) {
    metrics::Snapshot s0, s1;
    if (metrics::scrape(0, &s0) && metrics::scrape(1, &s1)) {
      hists->push = s0.hist(metrics::Hist::PushNs);
      hists->pop = s0.hist(metrics::Hist::PopNs);
      hists->steal = s1.hist(metrics::Hist::StealNs);
      hists->valid = true;
    }
    metrics::stop();
  }
  return out;
}

/// Steal/release latency per steal protocol (SCIOTO_QUEUE modes), in the
/// regime the lockfree mode exists for: the fig7 high-rank-count TAIL,
/// where many thieves poll one victim whose shared window is thin and
/// refilled in trickles (fine-grained 64-byte descriptors, chunk 2).
///
/// Steal row: seven thieves poll the victim while it trickles 8-task
/// batches. In locked mode every probe -- including the empty ones that
/// dominate the tail -- is a lock round trip serialized through
/// Engine::lock_acquire's waiter queue, so a successful steal inherits
/// the whole field's probe convoy in its lock wait. In lockfree mode an
/// empty probe is one 16-byte get and failed CAS claims retry with an
/// overlapped get pair, so probes overlap and only real claims contend.
/// Timing covers the steal_from calls themselves (plus, in aborting
/// mode, the busy-probes that precede a success, which are that
/// protocol's retry cost); idle time between trickles is production
/// schedule, identical across modes, and excluded.
///
/// Release row: the owner's half of the split machinery under the same
/// contention -- the owner drains its private side (charging a per-task
/// execution cost) and reacquires from the shared side while thieves
/// strip it. Locked-mode thin reacquires must take the owner's own lock
/// and queue behind remote thief holds; lockfree thin reacquires
/// self-steal through a LOCAL CAS (plus the same validated fast-path
/// publish both modes share when the window is deep). release_maybe
/// itself is an unlocked local split-raise in every split-based mode and
/// adds nothing to either side.
///
/// The converse regime is Table 1's bulk steal (1 kB bodies, chunk 10,
/// deep window): there the chunk's wire time dominates, a failed CAS
/// re-pays copies the locked protocol never wastes, and the idealized
/// handoff lock wins -- which is why the mode is opt-in, not the default.
struct ModeTimes {
  double steal_us = 0;
  double release_us = 0;
};

ModeTimes measure_mode(const sim::MachineModel& machine, QueueMode mode,
                       bool aborting, int steal_iters) {
  ModeTimes out;
  pgas::Config cfg;
  cfg.nranks = 8;  // one victim, seven thieves: the fig7 tail shape
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = machine;
  // Plain shared flags are safe here: the sim backend runs all ranks as
  // fibers of one thread.
  std::atomic<bool> feeding{true};
  std::atomic<bool> draining{true};
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    SplitQueue::Config qc;
    qc.slot_bytes = align_up(sizeof(TaskHeader) + 48, 8);  // 64 B descriptor
    qc.chunk = 2;
    qc.capacity = 1u << 16;
    qc.mode = mode;
    qc.aborting_steals = aborting;
    SplitQueue q(rt, qc);
    std::vector<std::byte> task(qc.slot_bytes, std::byte{7});
    std::vector<std::byte> steal_buf(qc.slot_bytes * qc.chunk);

    // --- Steal row: trickle-fed tail contention.
    const int rounds = std::max(16, steal_iters / 2);
    constexpr int kBatch = 8;
    constexpr TimeNs kTrickleNs = 60'000;  // next batch ~60 us later
    TimeNs spent = 0;
    std::uint64_t steals = 0;
    if (rt.me() == 0) {
      for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < kBatch; ++i) {
          SCIOTO_CHECK(q.push_local(task.data(), kAffinityLow));
        }
        rt.charge(kTrickleNs);  // produce the next batch off-queue
      }
      feeding.store(false, std::memory_order_release);
    } else {
      TimeNs busy_spent = 0;  // aborting: probe cost of the next success
      for (;;) {
        TimeNs t0 = rt.now();
        int n = q.steal_from(0, steal_buf.data());
        TimeNs dt = rt.now() - t0;
        if (n > 0) {
          spent += dt + busy_spent;
          busy_spent = 0;
          ++steals;
          continue;
        }
        if (n == SplitQueue::kStealBusy) {
          busy_spent += dt;
          continue;
        }
        busy_spent = 0;  // empty: no work, not protocol cost
        if (!feeding.load(std::memory_order_acquire) &&
            q.peek_shared(0) == 0) {
          break;
        }
      }
    }
    rt.barrier();
    std::uint64_t all_steals = rt.allreduce_sum(steals);
    std::uint64_t all_ns = rt.allreduce_sum(static_cast<std::uint64_t>(spent));
    if (rt.me() == 0 && all_steals > 0) {
      out.steal_us = to_us(static_cast<TimeNs>(all_ns)) /
                     static_cast<double>(all_steals);
    }
    q.reset_collective();

    // --- Release row: owner split-ops while thieves strip the window.
    constexpr TimeNs kExecNs = 2'000;  // owner per-task execution cost
    const std::uint64_t seed = 2048;
    if (rt.me() == 0) {
      for (std::uint64_t i = 0; i < seed; ++i) {
        SCIOTO_CHECK(q.push_local(task.data(), kAffinityLow));
      }
    }
    rt.barrier();
    if (rt.me() == 0) {
      TimeNs owner_spent = 0;
      std::uint64_t owner_ops = 0;
      for (;;) {
        while (q.pop_local(task.data())) {
          rt.charge(kExecNs);
        }
        if (q.shared_size() == 0) {
          break;
        }
        TimeNs t0 = rt.now();
        (void)q.release_maybe();
        (void)q.reacquire();
        owner_spent += rt.now() - t0;
        ++owner_ops;
      }
      draining.store(false, std::memory_order_release);
      if (owner_ops > 0) {
        out.release_us = to_us(owner_spent) / static_cast<double>(owner_ops);
      }
    } else {
      for (;;) {
        int n = q.steal_from(0, steal_buf.data());
        if (n > 0 || n == SplitQueue::kStealBusy) {
          continue;
        }
        if (!draining.load(std::memory_order_acquire) &&
            q.peek_shared(0) == 0) {
          break;
        }
      }
    }
    rt.barrier();
    q.destroy();
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_table1_ops",
               "Table 1: core task collection operation costs");
  opts.add_int("iters", 500, "operations per measurement");
  opts.add_string("json", "", "also write results as JSON to this file");
  opts.add_string("metrics-json", "",
                  "write op-latency percentiles from the live metrics "
                  "histograms to this file");
  opts.add_string("mode-json", "",
                  "write per-queue-mode contended steal/release latency "
                  "(locked | aborting | lockfree) to this file");
  if (!opts.parse(argc, argv)) return 0;
  int iters = static_cast<int>(opts.get_int("iters"));
  const std::string metrics_json = opts.get_string("metrics-json");
  const bool want_hists = !metrics_json.empty() && SCIOTO_METRICS_ENABLED;
  if (!metrics_json.empty() && !want_hists) {
    std::printf("metrics-json: compiled out (SCIOTO_METRICS=OFF); "
                "skipping\n");
  }

  OpHists cluster_h, xt4_h;
  OpTimes cluster = measure(sim::cluster2008_uniform(), iters,
                            want_hists ? &cluster_h : nullptr);
  OpTimes xt4 =
      measure(sim::cray_xt4(), iters, want_hists ? &xt4_h : nullptr);

  Table t({"Task Collection Operation", "Cluster(us)", "Paper-Cluster",
           "XT4(us)", "Paper-XT4"});
  t.add_row({"Local Insert", Table::fmt(cluster.local_insert_us, 4), "0.4952",
             Table::fmt(xt4.local_insert_us, 4), "0.9330"});
  t.add_row({"Remote Insert", Table::fmt(cluster.remote_insert_us, 3),
             "18.082", Table::fmt(xt4.remote_insert_us, 3), "27.018"});
  t.add_row({"Local Get", Table::fmt(cluster.local_get_us, 4), "0.3613",
             Table::fmt(xt4.local_get_us, 4), "0.6913"});
  t.add_row({"Remote Steal", Table::fmt(cluster.remote_steal_us, 3),
             "29.008", Table::fmt(xt4.remote_steal_us, 3), "32.384"});
  t.print("Table 1: microbenchmark timings for core Scioto operations "
          "(task body 1 kB, chunk 10)");

  const std::string json = opts.get_string("json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << json);
    auto emit = [&](const char* name, const OpTimes& o, const char* sep) {
      std::fprintf(f,
                   "  \"%s\": {\"local_insert_us\": %.4f, "
                   "\"remote_insert_us\": %.4f, \"local_get_us\": %.4f, "
                   "\"remote_steal_us\": %.4f}%s\n",
                   name, o.local_insert_us, o.remote_insert_us,
                   o.local_get_us, o.remote_steal_us, sep);
    };
    std::fprintf(f, "{\n  \"bench\": \"table1_ops\", \"iters\": %d,\n",
                 iters);
    emit("cluster", cluster, ",");
    emit("cray_xt4", xt4, "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json: wrote %s\n", json.c_str());
  }

  // --- Per-queue-mode contended steal/release comparison ---
  const int mode_iters = std::max(20, iters / 5);
  ModeTimes locked =
      measure_mode(sim::cluster2008_uniform(), QueueMode::Split,
                   /*aborting=*/false, mode_iters);
  ModeTimes aborting =
      measure_mode(sim::cluster2008_uniform(), QueueMode::Split,
                   /*aborting=*/true, mode_iters);
  ModeTimes lockfree =
      measure_mode(sim::cluster2008_uniform(), QueueMode::LockFree,
                   /*aborting=*/false, mode_iters);

  Table mt({"Queue Mode", "Steal(us, 7 thieves)", "Release(us)"});
  mt.add_row({"locked", Table::fmt(locked.steal_us, 3),
              Table::fmt(locked.release_us, 4)});
  mt.add_row({"aborting", Table::fmt(aborting.steal_us, 3),
              Table::fmt(aborting.release_us, 4)});
  mt.add_row({"lockfree", Table::fmt(lockfree.steal_us, 3),
              Table::fmt(lockfree.release_us, 4)});
  mt.print("Steal protocol comparison, trickle-fed tail contention "
           "(cluster model, 64 B descriptors, chunk 2)");

  const std::string mode_json = opts.get_string("mode-json");
  if (!mode_json.empty()) {
    std::FILE* f = std::fopen(mode_json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << mode_json);
    auto emit_mode = [&](const char* name, const ModeTimes& m,
                         const char* sep) {
      std::fprintf(f,
                   "  \"%s\": {\"steal_us\": %.4f, \"release_us\": %.4f}%s\n",
                   name, m.steal_us, m.release_us, sep);
    };
    std::fprintf(f,
                 "{\n  \"bench\": \"queue_mode\", \"iters\": %d, "
                 "\"thieves\": 7,\n",
                 mode_iters);
    emit_mode("locked", locked, ",");
    emit_mode("aborting", aborting, ",");
    emit_mode("lockfree", lockfree, "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("mode-json: wrote %s\n", mode_json.c_str());
  }

  if (want_hists && cluster_h.valid && xt4_h.valid) {
    std::FILE* f = std::fopen(metrics_json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << metrics_json);
    auto hist = [&](const char* name, const metrics::HistSnap& h,
                    const char* sep) {
      std::fprintf(
          f,
          "    \"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
          "\"p50_ns\": %llu, \"p95_ns\": %llu, \"p99_ns\": %llu, "
          "\"max_ns\": %llu}%s\n",
          name, static_cast<unsigned long long>(h.count), h.mean(),
          static_cast<unsigned long long>(h.percentile(50)),
          static_cast<unsigned long long>(h.percentile(95)),
          static_cast<unsigned long long>(h.percentile(99)),
          static_cast<unsigned long long>(h.max), sep);
    };
    auto model = [&](const char* name, const OpHists& o, const char* sep) {
      std::fprintf(f, "  \"%s\": {\n", name);
      hist("push_ns", o.push, ",");
      hist("pop_ns", o.pop, ",");
      hist("steal_ns", o.steal, "");
      std::fprintf(f, "  }%s\n", sep);
    };
    std::fprintf(f, "{\n  \"bench\": \"metrics_ops\", \"iters\": %d,\n",
                 iters);
    model("cluster", cluster_h, ",");
    model("cray_xt4", xt4_h, "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("metrics-json: wrote %s\n", metrics_json.c_str());
  }
  return 0;
}
