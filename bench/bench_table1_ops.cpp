// Table 1 reproduction: microbenchmark timings for core task-collection
// operations (paper §6.1).
//
// "Results ... were collected using a task body size of 1kB and a chunk
// size of 10." We time the same four operations on the split queue, under
// the simulated cluster and Cray XT4 machine models, and print them next
// to the paper's measurements:
//
//              Operation     Cluster     Cray XT4
//              Local Insert  0.4952 us   0.9330 us
//              Remote Insert 18.0819 us  27.018 us
//              Local Get     0.3613 us   0.6913 us
//              Remote Steal  29.0080 us  32.384 us
#include <cstdio>
#include <vector>

#include "base/options.hpp"
#include "base/table.hpp"
#include "metrics/metrics.hpp"
#include "pgas/runtime.hpp"
#include "scioto/queue.hpp"
#include "scioto/task.hpp"

using namespace scioto;

namespace {

struct OpTimes {
  double local_insert_us = 0;
  double remote_insert_us = 0;
  double local_get_us = 0;
  double remote_steal_us = 0;
};

/// Full op-latency distributions from the live metrics histograms (the
/// mean-only Table 1 numbers hide the tail the telemetry plane exposes).
struct OpHists {
  metrics::HistSnap push;   // rank 0's local pushes
  metrics::HistSnap pop;    // rank 0's local pops
  metrics::HistSnap steal;  // rank 1's remote steals
  bool valid = false;
};

OpTimes measure(const sim::MachineModel& machine, int iters,
                OpHists* hists) {
  OpTimes out;
  pgas::Config cfg;
  cfg.nranks = 2;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = machine;
  // Bench-owned metrics session: run_spmd sees an already-active session
  // and leaves it alone, so we can scrape the histograms after the run.
  if (hists != nullptr) {
    metrics::start(cfg.nranks);
  }

  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    SplitQueue::Config qc;
    qc.slot_bytes = align_up(sizeof(TaskHeader) + 1024, 8);  // 1 kB body
    qc.capacity = static_cast<std::uint64_t>(iters) * 16;
    qc.chunk = 10;
    SplitQueue q(rt, qc);
    std::vector<std::byte> task(qc.slot_bytes, std::byte{7});
    std::vector<std::byte> steal_buf(qc.slot_bytes * 10);

    // --- Local insert / local get (rank 0, lock-free path) ---
    if (rt.me() == 0) {
      TimeNs t0 = rt.now();
      for (int i = 0; i < iters; ++i) {
        SCIOTO_CHECK(q.push_local(task.data(), kAffinityHigh));
      }
      out.local_insert_us = to_us(rt.now() - t0) / iters;
      t0 = rt.now();
      for (int i = 0; i < iters; ++i) {
        SCIOTO_CHECK(q.pop_local(task.data()));
      }
      out.local_get_us = to_us(rt.now() - t0) / iters;
    }
    rt.barrier();

    // --- Remote insert (rank 1 adds into rank 0's patch) ---
    if (rt.me() == 1) {
      TimeNs t0 = rt.now();
      for (int i = 0; i < iters; ++i) {
        SCIOTO_CHECK(q.add_remote(0, task.data()));
      }
      out.remote_insert_us = to_us(rt.now() - t0) / iters;
    }
    rt.barrier();
    q.reset_collective();

    // --- Remote steal (rank 1 steals 10-task chunks from rank 0) ---
    if (rt.me() == 0) {
      for (int i = 0; i < iters * 10; ++i) {
        SCIOTO_CHECK(q.push_local(task.data(), kAffinityHigh));
      }
      // Expose everything for stealing.
      while (q.release_maybe() > 0) {
      }
      // release_maybe stops once the shared side looks full; force the
      // rest across for a pure steal measurement.
      while (q.private_size() > 0) {
        if (q.release_maybe() == 0) break;
      }
    }
    rt.barrier();
    if (rt.me() == 1) {
      TimeNs t0 = rt.now();
      int got = 0;
      int steals = 0;
      while (got < iters * 10) {
        int n = q.steal_from(0, steal_buf.data());
        if (n == 0) break;
        got += n;
        ++steals;
      }
      if (steals > 0) {
        out.remote_steal_us = to_us(rt.now() - t0) / steals;
      }
    }
    rt.barrier();
    q.destroy();
  });
  if (hists != nullptr) {
    metrics::Snapshot s0, s1;
    if (metrics::scrape(0, &s0) && metrics::scrape(1, &s1)) {
      hists->push = s0.hist(metrics::Hist::PushNs);
      hists->pop = s0.hist(metrics::Hist::PopNs);
      hists->steal = s1.hist(metrics::Hist::StealNs);
      hists->valid = true;
    }
    metrics::stop();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_table1_ops",
               "Table 1: core task collection operation costs");
  opts.add_int("iters", 500, "operations per measurement");
  opts.add_string("json", "", "also write results as JSON to this file");
  opts.add_string("metrics-json", "",
                  "write op-latency percentiles from the live metrics "
                  "histograms to this file");
  if (!opts.parse(argc, argv)) return 0;
  int iters = static_cast<int>(opts.get_int("iters"));
  const std::string metrics_json = opts.get_string("metrics-json");
  const bool want_hists = !metrics_json.empty() && SCIOTO_METRICS_ENABLED;
  if (!metrics_json.empty() && !want_hists) {
    std::printf("metrics-json: compiled out (SCIOTO_METRICS=OFF); "
                "skipping\n");
  }

  OpHists cluster_h, xt4_h;
  OpTimes cluster = measure(sim::cluster2008_uniform(), iters,
                            want_hists ? &cluster_h : nullptr);
  OpTimes xt4 =
      measure(sim::cray_xt4(), iters, want_hists ? &xt4_h : nullptr);

  Table t({"Task Collection Operation", "Cluster(us)", "Paper-Cluster",
           "XT4(us)", "Paper-XT4"});
  t.add_row({"Local Insert", Table::fmt(cluster.local_insert_us, 4), "0.4952",
             Table::fmt(xt4.local_insert_us, 4), "0.9330"});
  t.add_row({"Remote Insert", Table::fmt(cluster.remote_insert_us, 3),
             "18.082", Table::fmt(xt4.remote_insert_us, 3), "27.018"});
  t.add_row({"Local Get", Table::fmt(cluster.local_get_us, 4), "0.3613",
             Table::fmt(xt4.local_get_us, 4), "0.6913"});
  t.add_row({"Remote Steal", Table::fmt(cluster.remote_steal_us, 3),
             "29.008", Table::fmt(xt4.remote_steal_us, 3), "32.384"});
  t.print("Table 1: microbenchmark timings for core Scioto operations "
          "(task body 1 kB, chunk 10)");

  const std::string json = opts.get_string("json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << json);
    auto emit = [&](const char* name, const OpTimes& o, const char* sep) {
      std::fprintf(f,
                   "  \"%s\": {\"local_insert_us\": %.4f, "
                   "\"remote_insert_us\": %.4f, \"local_get_us\": %.4f, "
                   "\"remote_steal_us\": %.4f}%s\n",
                   name, o.local_insert_us, o.remote_insert_us,
                   o.local_get_us, o.remote_steal_us, sep);
    };
    std::fprintf(f, "{\n  \"bench\": \"table1_ops\", \"iters\": %d,\n",
                 iters);
    emit("cluster", cluster, ",");
    emit("cray_xt4", xt4, "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json: wrote %s\n", json.c_str());
  }

  if (want_hists && cluster_h.valid && xt4_h.valid) {
    std::FILE* f = std::fopen(metrics_json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << metrics_json);
    auto hist = [&](const char* name, const metrics::HistSnap& h,
                    const char* sep) {
      std::fprintf(
          f,
          "    \"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
          "\"p50_ns\": %llu, \"p95_ns\": %llu, \"p99_ns\": %llu, "
          "\"max_ns\": %llu}%s\n",
          name, static_cast<unsigned long long>(h.count), h.mean(),
          static_cast<unsigned long long>(h.percentile(50)),
          static_cast<unsigned long long>(h.percentile(95)),
          static_cast<unsigned long long>(h.percentile(99)),
          static_cast<unsigned long long>(h.max), sep);
    };
    auto model = [&](const char* name, const OpHists& o, const char* sep) {
      std::fprintf(f, "  \"%s\": {\n", name);
      hist("push_ns", o.push, ",");
      hist("pop_ns", o.pop, ",");
      hist("steal_ns", o.steal, "");
      std::fprintf(f, "  }%s\n", sep);
    };
    std::fprintf(f, "{\n  \"bench\": \"metrics_ops\", \"iters\": %d,\n",
                 iters);
    model("cluster", cluster_h, ",");
    model("cray_xt4", xt4_h, "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("metrics-json: wrote %s\n", metrics_json.c_str());
  }
  return 0;
}
