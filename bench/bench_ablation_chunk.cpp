// Ablation: steal chunk size (the tc_create chunk_sz parameter).
//
// The chunk controls how many tasks one steal transfers. Too small and
// thieves pay the ~29 us one-sided steal cost for a sliver of work; too
// large and a steal strips the victim. The paper fixes chunk = 10 for its
// microbenchmarks; this sweep shows where that sits on the UTS workload.
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"

using namespace scioto;
using namespace scioto::apps;

int main(int argc, char** argv) {
  Options opts("bench_ablation_chunk", "steal chunk-size sweep on UTS");
  opts.add_int("procs", 32, "process count");
  opts.add_int("scale", 11, "geometric tree depth");
  if (!opts.parse(argc, argv)) return 0;
  const int procs = static_cast<int>(opts.get_int("procs"));

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsCounts expected = uts_sequential(tree);
  std::printf("workload: %s, %llu nodes on %d procs (heterogeneous "
              "cluster)\n",
              uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes), procs);

  Table t({"Chunk", "Throughput(Mn/s)", "Steals", "Tasks-Stolen",
           "Tasks/Steal"});
  for (int chunk : {1, 2, 5, 10, 20, 50}) {
    pgas::Config cfg;
    cfg.nranks = procs;
    cfg.backend = pgas::BackendKind::Sim;
    cfg.machine = sim::cluster2008();
    UtsRunConfig rc;
    rc.chunk = chunk;
    UtsResult res;
    pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
      res = uts_run_scioto(rt, tree, rc);
    });
    SCIOTO_CHECK_MSG(res.counts == expected, "traversal mismatch");
    t.add_row({Table::fmt(std::int64_t{chunk}),
               Table::fmt(res.mnodes_per_sec, 2),
               Table::fmt(static_cast<std::int64_t>(res.steals)),
               Table::fmt(static_cast<std::int64_t>(res.tasks_stolen)),
               Table::fmt(res.steals
                              ? static_cast<double>(res.tasks_stolen) /
                                    static_cast<double>(res.steals)
                              : 0.0,
                          2)});
  }
  t.print("Ablation: steal chunk size (UTS, Scioto split queues)");
  return 0;
}
