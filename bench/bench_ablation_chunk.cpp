// Ablation: steal chunk size (the tc_create chunk_sz parameter) and the
// adaptive steal-half policy.
//
// The chunk controls how many tasks one steal transfers. Too small and
// thieves pay the ~29 us one-sided steal cost for a sliver of work; too
// large and a steal strips the victim. The paper fixes chunk = 10 for its
// microbenchmarks; this sweep shows where that sits on two UTS workload
// shapes, and where the steal-half adaptive policy (take
// min(ceil(depth/2), cap) based on the victim's shared depth) lands
// without any per-workload tuning -- the claim is that one adaptive knob
// matches or beats the best hand-picked static chunk on both trees.
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

struct Row {
  const char* label;
  int chunk;
  bool adaptive;
};

// Static sweep (the paper's knob) plus the adaptive policy at two caps.
const Row kRows[] = {
    {"1", 1, false},        {"2", 2, false},   {"5", 5, false},
    {"10", 10, false},      {"20", 20, false}, {"50", 50, false},
    {"half<=10", 10, true}, {"half<=20", 20, true},
};

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_ablation_chunk",
               "steal chunk-size sweep + steal-half adaptive policy on UTS");
  opts.add_int("procs", 32, "process count");
  opts.add_int("scale", 11, "geometric tree depth (T1)");
  opts.add_flag("aborting", false, "also enable trylock-abort steals");
  if (!opts.parse(argc, argv)) return 0;
  const int procs = static_cast<int>(opts.get_int("procs"));
  const bool aborting = opts.get_flag("aborting");

  // Two tree shapes in the spirit of the UTS T1/T2 workloads: the
  // near-balanced linear-decay geometric tree, and a binomial tree whose
  // heavy-tailed subtrees produce bursty imbalance (deep victims one
  // moment, dry ones the next) -- the case adaptive chunking is for.
  UtsParams t1 = uts_bench();
  t1.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsParams t2;
  t2.tree = UtsTree::Binomial;
  t2.seed = 42;
  t2.b0 = 2000;     // wide root fan-out, then bursty subcritical subtrees
  t2.q = 0.120;     // mq = 0.96: mean subtree ~25 nodes, heavy tail
  t2.m = 8;

  struct Workload {
    const char* name;
    UtsParams tree;
  } workloads[] = {{"T1 geometric-linear", t1}, {"T2 binomial-bursty", t2}};

  for (const auto& w : workloads) {
    UtsCounts expected = uts_sequential(w.tree);
    std::printf("workload %s: %s, %llu nodes on %d procs (heterogeneous "
                "cluster)%s\n",
                w.name, uts_describe(w.tree).c_str(),
                static_cast<unsigned long long>(expected.nodes), procs,
                aborting ? ", aborting steals" : "");

    Table t({"Chunk", "Throughput(Mn/s)", "Steals", "Tasks-Stolen",
             "Tasks/Steal", "Lock-Busy"});
    double best_static = 0.0, best_adaptive = 0.0;
    for (const Row& row : kRows) {
      pgas::Config cfg;
      cfg.nranks = procs;
      cfg.backend = pgas::BackendKind::Sim;
      cfg.machine = sim::cluster2008();
      UtsRunConfig rc;
      rc.chunk = row.chunk;
      rc.adaptive_steal = row.adaptive;
      rc.aborting_steals = aborting;
      UtsResult res;
      pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
        res = uts_run_scioto(rt, w.tree, rc);
      });
      SCIOTO_CHECK_MSG(res.counts == expected, "traversal mismatch");
      if (row.adaptive) {
        best_adaptive = std::max(best_adaptive, res.mnodes_per_sec);
      } else {
        best_static = std::max(best_static, res.mnodes_per_sec);
      }
      t.add_row({row.label, Table::fmt(res.mnodes_per_sec, 2),
                 Table::fmt(static_cast<std::int64_t>(res.steals)),
                 Table::fmt(static_cast<std::int64_t>(res.tasks_stolen)),
                 Table::fmt(res.steals
                                ? static_cast<double>(res.tasks_stolen) /
                                      static_cast<double>(res.steals)
                                : 0.0,
                            2),
                 Table::fmt(static_cast<std::int64_t>(
                     res.stats.steals_lock_busy))});
    }
    t.print("Ablation: steal chunk size vs steal-half (UTS, Scioto split "
            "queues)");
    std::printf("best static %.2f Mn/s, best adaptive %.2f Mn/s "
                "(adaptive/static = %.3f)\n\n",
                best_static, best_adaptive, best_adaptive / best_static);
  }
  return 0;
}
