// Real-hardware microbenchmarks (google-benchmark) over the *threads*
// backend: the actual data-structure costs of the queue, RMW, and SHA-1
// primitives on this host, complementing bench_table1_ops' virtual-time
// reproduction of the paper's Table 1.
#include <benchmark/benchmark.h>

#include <vector>

#include "base/sha1.hpp"
#include "pgas/runtime.hpp"
#include "scioto/queue.hpp"
#include "scioto/task.hpp"

namespace {

using namespace scioto;

constexpr std::size_t kBody = 1024;  // Table 1's task body size

SplitQueue::Config qcfg() {
  SplitQueue::Config c;
  c.slot_bytes = align_up(sizeof(TaskHeader) + kBody, 8);
  c.capacity = 1 << 16;
  c.chunk = 10;
  return c;
}

pgas::Config rt_cfg(int nranks) {
  pgas::Config cfg;
  cfg.nranks = nranks;
  cfg.backend = pgas::BackendKind::Threads;
  return cfg;
}

void BM_Sha1TaskDigest(benchmark::State& state) {
  std::uint8_t buf[24] = {1, 2, 3};
  for (auto _ : state) {
    auto d = Sha1::hash(buf, sizeof(buf));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Sha1TaskDigest);

void BM_QueueLocalPushPop(benchmark::State& state) {
  pgas::run_spmd(rt_cfg(1), [&](pgas::Runtime& rt) {
    SplitQueue q(rt, qcfg());
    std::vector<std::byte> task(q.slot_bytes(), std::byte{3});
    for (auto _ : state) {
      benchmark::DoNotOptimize(q.push_local(task.data(), kAffinityHigh));
      benchmark::DoNotOptimize(q.pop_local(task.data()));
    }
    q.destroy();
  });
}
BENCHMARK(BM_QueueLocalPushPop);

void BM_QueueReleaseReacquire(benchmark::State& state) {
  pgas::run_spmd(rt_cfg(1), [&](pgas::Runtime& rt) {
    SplitQueue::Config c = qcfg();
    c.release_threshold = 0;  // always eligible
    SplitQueue q(rt, c);
    std::vector<std::byte> task(q.slot_bytes(), std::byte{3});
    for (int i = 0; i < 64; ++i) {
      q.push_local(task.data(), kAffinityHigh);
    }
    for (auto _ : state) {
      benchmark::DoNotOptimize(q.release_maybe());
      benchmark::DoNotOptimize(q.reacquire());
    }
    q.destroy();
  });
}
BENCHMARK(BM_QueueReleaseReacquire);

void BM_RemoteAddPlusSteal(benchmark::State& state) {
  // Rank 1 drives: 10 remote adds into rank 0's patch, then one 10-task
  // steal back -- the full one-sided transfer path (locks + memcpy) on
  // real hardware.
  pgas::run_spmd(rt_cfg(2), [&](pgas::Runtime& rt) {
    SplitQueue q(rt, qcfg());
    if (rt.me() == 1) {
      std::vector<std::byte> task(q.slot_bytes(), std::byte{3});
      std::vector<std::byte> out(q.slot_bytes() * 10);
      for (auto _ : state) {
        for (int i = 0; i < 10; ++i) {
          benchmark::DoNotOptimize(q.add_remote(0, task.data()));
        }
        int got = q.steal_from(0, out.data());
        benchmark::DoNotOptimize(got);
      }
      // Signal rank 0 we are done.
      rt.send(0, 1, &state, sizeof(void*));
    } else {
      std::byte buf[sizeof(void*)];
      rt.recv(1, 1, buf, sizeof(buf));
    }
    q.destroy();
  });
}
BENCHMARK(BM_RemoteAddPlusSteal)->Unit(benchmark::kMicrosecond);

void BM_FetchAdd(benchmark::State& state) {
  pgas::run_spmd(rt_cfg(1), [&](pgas::Runtime& rt) {
    pgas::SegId seg = rt.seg_alloc(8);
    for (auto _ : state) {
      benchmark::DoNotOptimize(rt.fetch_add(seg, 0, 0, 1));
    }
    rt.seg_free(seg);
  });
}
BENCHMARK(BM_FetchAdd);

}  // namespace

BENCHMARK_MAIN();
