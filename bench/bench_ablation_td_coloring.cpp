// Ablation: the §5.3 token-coloring optimization.
//
// A thief normally marks its victim dirty with an extra one-sided message
// so the victim re-votes. §5.3 proves the mark can be skipped when the
// thief has not voted in the current wave or the victim is the thief's
// descendant. This harness counts the messages saved and confirms the
// traversal stays correct either way.
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "scioto/task_collection.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

struct ColoringStats {
  double mnodes;
  std::uint64_t marks_sent;
  std::uint64_t marks_skipped;
  std::uint64_t waves;
};

ColoringStats run(int procs, const UtsParams& tree, bool opt) {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();
  ColoringStats out{};
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    TcConfig tcc;
    tcc.max_task_body = sizeof(UtsNode);
    tcc.color_optimization = opt;
    TaskCollection tc(rt, tcc);
    UtsCounts local;
    CloHandle clo = tc.register_clo(&local);
    TaskHandle h = tc.register_callback([&, clo](TaskContext& ctx) {
      UtsCounts& counts = ctx.tc.clo<UtsCounts>(clo);
      UtsNode node = ctx.body_as<UtsNode>();
      for (;;) {
        ctx.tc.runtime().charge(ns(316));
        ++counts.nodes;
        int nc = uts_num_children(node, tree);
        if (nc == 0) break;
        for (int i = 1; i < nc; ++i) {
          Task t = ctx.tc.task_create(sizeof(UtsNode), ctx.header.callback);
          t.body_as<UtsNode>() = uts_child(node, i);
          ctx.tc.add_local(t);
        }
        node = uts_child(node, 0);
      }
    });
    if (rt.me() == 0) {
      Task t = tc.task_create(sizeof(UtsNode), h);
      t.body_as<UtsNode>() = uts_root(tree);
      tc.add_local(t);
    }
    rt.barrier();
    TimeNs t0 = rt.now();
    tc.process();
    TimeNs elapsed = rt.allreduce_max(rt.now() - t0);
    std::uint64_t nodes = rt.allreduce_sum(local.nodes);
    TcStats g = tc.stats_global();
    if (rt.me() == 0) {
      out.mnodes = static_cast<double>(nodes) / (to_sec(elapsed) * 1e6);
      out.marks_sent = g.td_marks_sent;
      out.marks_skipped = g.td_marks_skipped;
      out.waves = g.td_waves_voted;
    }
    tc.destroy();
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_ablation_td_coloring",
               "token-coloring optimization on/off");
  opts.add_int("scale", 10, "geometric tree depth");
  if (!opts.parse(argc, argv)) return 0;

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));

  Table t({"Procs", "Variant", "Mnodes/s", "DirtyMarks", "MarksSkipped",
           "Waves"});
  for (int p : {16, 64}) {
    for (bool opt : {false, true}) {
      ColoringStats s = run(p, tree, opt);
      t.add_row({Table::fmt(std::int64_t{p}),
                 opt ? "with-5.3-opt" : "always-mark",
                 Table::fmt(s.mnodes, 2),
                 Table::fmt(static_cast<std::int64_t>(s.marks_sent)),
                 Table::fmt(static_cast<std::int64_t>(s.marks_skipped)),
                 Table::fmt(static_cast<std::int64_t>(s.waves))});
    }
  }
  t.print("Ablation: §5.3 token-coloring optimization (UTS workload)");
  return 0;
}
