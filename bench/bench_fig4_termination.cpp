// Figure 4 reproduction: termination detection vs ARMCI and MPI barriers
// on 1..64 cluster nodes (paper §5.2, Figure 4).
//
// "In this comparison, we detect termination after executing a single
// no-op task and found that our algorithm can detect termination in
// roughly twice the time required for ARMCI and MPI barrier operations."
//
// Expected shape: all three series grow ~logarithmically with the process
// count; the Scioto termination wave costs a small constant factor (~2x)
// over a barrier because it is two one-sided token waves plus the
// broadcast instead of one dissemination round.
#include <cstdio>
#include <vector>

#include "base/options.hpp"
#include "base/stats.hpp"
#include "base/table.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "pgas/runtime.hpp"
#include "scioto/task_collection.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace scioto;

namespace {

struct Fig4Row {
  int procs = 0;
  double term_us = 0;
  double armci_us = 0;
  double mpi_us = 0;
  // Root-observed wave-latency distribution from the live metrics plane
  // (launch -> all votes in), one histogram per process count.
  metrics::HistSnap wave;
  std::uint64_t waves = 0;
  bool hist_valid = false;
};

Fig4Row measure(int procs, int trials, bool want_hists,
                const std::string& trace_file = "",
                const std::string& fault_spec = "") {
  Fig4Row row;
  row.procs = procs;
  // Bench-owned metrics session: run_spmd sees it active and leaves it
  // alone, so rank 0's wave histogram survives past the SPMD region.
  if (want_hists) {
    metrics::start(procs);
  }
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008_uniform();

  const bool tracing = !trace_file.empty();
  if (tracing) {
    trace::start(procs);
  }
  // --fault-plan: detection must still converge with ranks dying between
  // (or during) waves; killed ranks drop out of the remaining trials and
  // row means cover survivors only.
  const bool faulting = !fault_spec.empty();
  if (faulting) {
    fault::start(procs, fault::FaultPlan::parse(fault_spec), cfg.seed);
  }
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    // --- Scioto termination detection after a single no-op task ---
    TcConfig tcc;
    tcc.max_task_body = 8;
    TaskCollection tc(rt, tcc);
    TaskHandle noop = tc.register_callback([](TaskContext&) {});
    Accumulator term;
    for (int t = 0; t < trials; ++t) {
      if (rt.me() == 0) {
        Task task = tc.task_create(0, noop);
        tc.add_local(task);
      }
      rt.barrier();
      TimeNs t0 = rt.now();
      tc.process();
      TimeNs local = rt.now() - t0;
      term.add(to_us(rt.allreduce_max(local)));
      tc.reset();
    }
    tc.destroy();

    // --- ARMCI barrier ---
    Accumulator armci;
    for (int t = 0; t < trials; ++t) {
      rt.barrier();
      TimeNs t0 = rt.now();
      rt.barrier();
      armci.add(to_us(rt.allreduce_max(rt.now() - t0)));
    }

    // --- MPI barrier ---
    Accumulator mpi;
    for (int t = 0; t < trials; ++t) {
      rt.barrier();
      TimeNs t0 = rt.now();
      rt.barrier_mpi();
      mpi.add(to_us(rt.allreduce_max(rt.now() - t0)));
    }

    if (rt.me() == 0) {
      row.term_us = term.mean();
      row.armci_us = armci.mean();
      row.mpi_us = mpi.mean();
    }
  });
  if (want_hists) {
    metrics::Snapshot s0;
    if (metrics::scrape(0, &s0)) {
      row.wave = s0.hist(metrics::Hist::WaveNs);
      row.waves = s0.ctr(metrics::Ctr::TdWaves);
      row.hist_valid = true;
    }
    metrics::stop();
  }
  if (faulting) {
    fault::Summary s = fault::summary();
    std::printf("faults at %d procs: %lld kills, %d survivors\n", procs,
                s.kills, fault::alive_count());
    fault::stop();
  }
  if (tracing) {
    if (trace::write_chrome_trace_file(trace_file)) {
      std::printf("trace: wrote %s (%d ranks)\n", trace_file.c_str(), procs);
    }
    trace::stop();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_fig4_termination",
               "Figure 4: termination detection vs barriers");
  opts.add_int("trials", 10, "trials per point");
  opts.add_int("max-procs", 64, "largest process count");
  opts.add_string("trace", "",
                  "write a Chrome trace JSON of the max-procs run (token "
                  "waves, votes, barriers) to this file");
  opts.add_string("fault-plan", "",
                  "fault plan (spec/JSON/@file) injected into the max-procs "
                  "run; detection must still converge on the survivors");
  opts.add_string("json", "", "also write results as JSON to this file");
  opts.add_string("metrics-json", "",
                  "write per-procs wave-latency percentiles from the live "
                  "metrics histograms to this file");
  if (!opts.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(opts.get_int("trials"));
  const int maxp = static_cast<int>(opts.get_int("max-procs"));
  const std::string metrics_json = opts.get_string("metrics-json");
  const bool want_hists = !metrics_json.empty() && SCIOTO_METRICS_ENABLED;
  if (!metrics_json.empty() && !want_hists) {
    std::printf("metrics-json: compiled out (SCIOTO_METRICS=OFF); "
                "skipping\n");
  }

  Table t({"Procs", "Scioto-Termination(us)", "ARMCI-Barrier(us)",
           "MPI-Barrier(us)", "Term/Barrier", "Wave/Barrier"});
  std::vector<Fig4Row> rows;
  for (int p = 1; p <= maxp; p *= 2) {
    const std::string trace_file =
        p == maxp ? opts.get_string("trace") : std::string();
    const std::string fault_spec =
        p == maxp ? opts.get_string("fault-plan") : std::string();
    Fig4Row r = measure(p, trials, want_hists, trace_file, fault_spec);
    rows.push_back(r);
    double ratio = r.mpi_us > 0 ? r.term_us / r.mpi_us : 0;
    // tc_process includes one mandatory phase-entry barrier; the second
    // ratio isolates the detection wave itself, which is what the paper's
    // "roughly twice the time of a barrier" refers to.
    double wave_ratio =
        r.mpi_us > 0 ? (r.term_us - r.armci_us) / r.mpi_us : 0;
    t.add_row({Table::fmt(std::int64_t{p}), Table::fmt(r.term_us, 2),
               Table::fmt(r.armci_us, 2), Table::fmt(r.mpi_us, 2),
               Table::fmt(ratio, 2), Table::fmt(wave_ratio, 2)});
  }
  t.print("Figure 4: termination detection vs ARMCI/MPI barrier on the "
          "cluster (log-log in the paper; expect ~log p growth, "
          "termination wave ~2x barrier)");

  const std::string json = opts.get_string("json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << json);
    std::fprintf(f,
                 "{\n  \"bench\": \"fig4_termination\", \"trials\": %d,\n"
                 "  \"rows\": [\n",
                 trials);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"procs\": %d, \"term_us\": %.3f, "
                   "\"armci_us\": %.3f, \"mpi_us\": %.3f}%s\n",
                   rows[i].procs, rows[i].term_us, rows[i].armci_us,
                   rows[i].mpi_us, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json: wrote %s\n", json.c_str());
  }

  if (want_hists) {
    std::FILE* f = std::fopen(metrics_json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << metrics_json);
    std::fprintf(f,
                 "{\n  \"bench\": \"metrics_termination\", \"trials\": %d,\n"
                 "  \"rows\": [\n",
                 trials);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Fig4Row& r = rows[i];
      if (!r.hist_valid) continue;
      std::fprintf(
          f,
          "    {\"procs\": %d, \"waves\": %llu, \"wave_ns\": "
          "{\"count\": %llu, \"mean_ns\": %.1f, \"p50_ns\": %llu, "
          "\"p95_ns\": %llu, \"p99_ns\": %llu, \"max_ns\": %llu}}%s\n",
          r.procs, static_cast<unsigned long long>(r.waves),
          static_cast<unsigned long long>(r.wave.count), r.wave.mean(),
          static_cast<unsigned long long>(r.wave.percentile(50)),
          static_cast<unsigned long long>(r.wave.percentile(95)),
          static_cast<unsigned long long>(r.wave.percentile(99)),
          static_cast<unsigned long long>(r.wave.max),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("metrics-json: wrote %s\n", metrics_json.c_str());
  }
  return 0;
}
