// Elastic membership on bursty UTS: does growing the fleet mid-run pay?
//
// The claim under test (the elastic subsystem's win condition): a run that
// starts with half the fleet and admits the other half shortly after the
// root burst fans out must land strictly between the small and large
// static fleets in throughput -- the joiners arrive in time to help drain
// the burst, so elasticity recovers most of the capacity a static small
// fleet leaves on the table. Also measures the quiesce+checkpoint pause: a
// mid-run snapshot on the full fleet against the same run without one.
//
// Virtual-time sim, so every number is bit-deterministic: the CI budget
// asserts on these throughputs without wall-clock noise.
#include <cstdio>
#include <string>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "detect/membership.hpp"
#include "elastic/elastic.hpp"
#include "fault/fault.hpp"
#include "fault/plan.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

UtsResult run_static(const UtsParams& tree, int procs) {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();
  UtsResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    res = uts_run_scioto(rt, tree, UtsRunConfig{});
  });
  return res;
}

// One elastic run: the fault plan supplies join/ckpt rules, the staged
// elastic config arms the session inside run_spmd.
UtsResult run_elastic(const UtsParams& tree, int procs,
                      const std::string& plan, const std::string& ckpt_path) {
  elastic::Config saved = elastic::config();
  elastic::Config ec = saved;
  ec.enabled = true;
  ec.ckpt_path = ckpt_path;
  elastic::set_config(ec);
  // The membership view elastic arms brings the heartbeat probe engine
  // with it. Its default cadence is tuned for sub-millisecond failure
  // detection; this bench injects no kills, so back the probes way off --
  // otherwise their charged remote reads tax every worker and the
  // comparison measures the detector, not elasticity.
  detect::Config saved_d = detect::config();
  detect::Config dc = saved_d;
  dc.hb_period = us(200);
  dc.probe_period = us(1000);
  dc.suspect_after = ms(50);
  dc.confirm_after = ms(200);
  detect::set_config(dc);
  fault::start(procs, fault::FaultPlan::parse(plan), /*seed=*/1);

  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();
  UtsResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    res = uts_run_scioto_elastic(rt, tree, UtsRunConfig{});
  });

  fault::stop();
  detect::set_config(saved_d);
  elastic::set_config(saved);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
#if !SCIOTO_ELASTIC_ENABLED
  (void)argc;
  (void)argv;
  std::printf("bench_elastic: built with SCIOTO_ELASTIC=OFF, nothing to "
              "measure\n");
  return 0;
#else
  Options opts("bench_elastic",
               "grow-mid-run and checkpoint-pause costs on bursty UTS");
  opts.add_int("procs", 8, "full fleet size (grown runs end here)");
  opts.add_string("json", "", "also write results as JSON to this file");
  if (!opts.parse(argc, argv)) return 0;
  const int procs = static_cast<int>(opts.get_int("procs"));
  const int small = procs / 2;
  SCIOTO_CHECK_MSG(small >= 1, "need at least 2 procs");
  const std::string json = opts.get_string("json");

  // The T2 bursty binomial workload from the chunk ablation: a wide root
  // fan-out into heavy-tailed subtrees. The burst is exactly the moment
  // extra ranks are worth admitting.
  UtsParams t2;
  t2.tree = UtsTree::Binomial;
  t2.seed = 42;
  t2.b0 = 2000;
  t2.q = 0.120;
  t2.m = 8;
  UtsCounts expected = uts_sequential(t2);
  std::printf("workload T2 binomial-bursty: %s, %llu nodes\n",
              uts_describe(t2).c_str(),
              static_cast<unsigned long long>(expected.nodes));

  UtsResult st_small = run_static(t2, small);
  SCIOTO_CHECK_MSG(st_small.counts == expected, "static-small mismatch");
  UtsResult st_full = run_static(t2, procs);
  SCIOTO_CHECK_MSG(st_full.counts == expected, "static-full mismatch");

  // Joiners arrive once the root burst has fanned out: ~10% into the
  // small fleet's run, derived from its measured (virtual) elapsed time
  // so the scenario scales with the workload.
  const TimeNs join_at = st_small.elapsed / 10;
  std::string grow_plan;
  for (int r = small; r < procs; ++r) {
    if (!grow_plan.empty()) grow_plan += ";";
    grow_plan += "join:rank=" + std::to_string(r) +
                 ",at=" + std::to_string(join_at) + "ns";
  }
  UtsResult grown = run_elastic(t2, procs, grow_plan, "");
  SCIOTO_CHECK_MSG(grown.counts == expected, "grown-run mismatch");
  detect::Stats ds = detect::stats();
  SCIOTO_CHECK_MSG(ds.joins == static_cast<std::uint64_t>(procs - small),
                   "expected " << (procs - small) << " joins, got "
                               << ds.joins);

  // Checkpoint pause: one quiesce+snapshot halfway through the full
  // fleet's run, against the same fleet without one.
  const std::string ckpt_path = "bench_elastic.ckpt";
  const std::string ckpt_plan =
      "ckpt:at=" + std::to_string(st_full.elapsed / 2) + "ns";
  UtsResult ckpt = run_elastic(t2, procs, ckpt_plan, ckpt_path);
  SCIOTO_CHECK_MSG(ckpt.counts == expected, "ckpt-run mismatch");
  elastic::Stats es = elastic::stats();
  SCIOTO_CHECK_MSG(es.checkpoints == 1,
                   "expected 1 checkpoint, got " << es.checkpoints);
  std::remove(ckpt_path.c_str());
  for (int r = 0; r < procs; ++r) {
    std::remove((ckpt_path + ".r" + std::to_string(r)).c_str());
  }

  const double grow_vs_small = grown.mnodes_per_sec / st_small.mnodes_per_sec;
  const double grow_vs_full = grown.mnodes_per_sec / st_full.mnodes_per_sec;
  const double ckpt_overhead =
      (static_cast<double>(ckpt.elapsed) /
           static_cast<double>(st_full.elapsed) -
       1.0) *
      100.0;

  Table t({"Config", "Throughput(Mn/s)", "Elapsed(us)", "Steals"});
  auto row = [&](const char* label, const UtsResult& r) {
    t.add_row({label, Table::fmt(r.mnodes_per_sec, 2),
               Table::fmt(static_cast<double>(r.elapsed) / 1000.0, 1),
               Table::fmt(static_cast<std::int64_t>(r.steals))});
  };
  char grow_label[48];
  std::snprintf(grow_label, sizeof(grow_label), "grow %d->%d @%.0fus", small,
                procs, static_cast<double>(join_at) / 1000.0);
  row("static small", st_small);
  row("static full", st_full);
  row(grow_label, grown);
  row("full + 1 ckpt", ckpt);
  t.print("Elastic membership on bursty UTS (virtual time, deterministic)");
  std::printf("grow %d->%d: %.3fx over static %d, %.3fx of static %d; "
              "1 mid-run ckpt costs %.1f%%\n",
              small, procs, grow_vs_small, small, grow_vs_full, procs,
              ckpt_overhead);

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << json);
    std::fprintf(f, "{\n  \"workload\": \"T2-binomial-bursty\",\n");
    std::fprintf(f, "  \"nodes\": %llu,\n  \"procs_small\": %d,\n"
                 "  \"procs_full\": %d,\n",
                 static_cast<unsigned long long>(expected.nodes), small,
                 procs);
    std::fprintf(f, "  \"join_at_ns\": %lld,\n",
                 static_cast<long long>(join_at));
    std::fprintf(f, "  \"static_small_mnps\": %.4f,\n",
                 st_small.mnodes_per_sec);
    std::fprintf(f, "  \"static_full_mnps\": %.4f,\n", st_full.mnodes_per_sec);
    std::fprintf(f, "  \"grow_mnps\": %.4f,\n", grown.mnodes_per_sec);
    std::fprintf(f, "  \"grow_vs_small\": %.4f,\n", grow_vs_small);
    std::fprintf(f, "  \"grow_vs_full\": %.4f,\n", grow_vs_full);
    std::fprintf(f, "  \"joins\": %llu,\n",
                 static_cast<unsigned long long>(ds.joins));
    std::fprintf(f, "  \"ckpt_mnps\": %.4f,\n", ckpt.mnodes_per_sec);
    std::fprintf(f, "  \"ckpt_overhead_pct\": %.2f\n}\n", ckpt_overhead);
    std::fclose(f);
    std::printf("json: wrote %s\n", json.c_str());
  }
  return 0;
#endif
}
