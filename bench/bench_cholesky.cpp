// Dataflow vs fork-join: tiled Cholesky under the dependency engine
// against the static owner-computes schedule (src/apps/cholesky).
//
// Both schedules run the same tile kernels with the same virtual charges
// on the same tile-aligned row-panel distribution; the distribution makes
// trailing-update work triangular across ranks. The static schedule pays
// max-per-rank at three barriers per panel step, so its makespan is the
// sum of per-phase critical ranks; the DAG schedule overlaps panel steps
// and lets idle ranks steal ready tile tasks. Expect the gap to widen
// with the tile count.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/cholesky/cholesky.hpp"
#include "base/error.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "pgas/runtime.hpp"
#include "trace/analysis.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

using namespace scioto;

namespace {

struct CholRow {
  int tiles = 0;
  apps::CholeskyResult dag;
  apps::CholeskyResult stat;
};

CholRow measure(int procs, int tiles, int tile) {
  CholRow row;
  row.tiles = tiles;
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008_uniform();
  apps::CholeskyConfig ccfg;
  ccfg.tiles = tiles;
  ccfg.tile = tile;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    apps::CholeskyResult d = apps::cholesky_dag(rt, ccfg);
    apps::CholeskyResult s = apps::cholesky_static(rt, ccfg);
    if (rt.me() == 0) {
      row.dag = d;
      row.stat = s;
    }
  });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_cholesky",
               "tiled Cholesky: DAG schedule vs static fork-join");
  opts.add_int("procs", 8, "process count");
  opts.add_int("tile", 16, "tile side length b");
  opts.add_int("max-tiles", 12, "largest tile grid side");
  opts.add_string("json", "", "also write results as JSON to this file");
  opts.add_flag("flow", false,
                "re-run the DAG schedule at max-tiles with task lineage "
                "armed and print its weighted critical path + top-3 blame "
                "ranks");
  if (!opts.parse(argc, argv)) return 0;
  bool flow = opts.get_flag("flow");
  if (flow && !SCIOTO_LINEAGE_ENABLED) {
    std::printf("--flow: lineage compiled out (SCIOTO_LINEAGE=OFF); "
                "skipping flow analytics\n");
    flow = false;
  }
  const int procs = static_cast<int>(opts.get_int("procs"));
  const int tile = static_cast<int>(opts.get_int("tile"));
  const int maxt = static_cast<int>(opts.get_int("max-tiles"));

  Table t({"Tiles", "Tasks", "DAG(ms)", "Static(ms)", "Speedup",
           "Steals(remote-fires)", "Residual"});
  std::vector<CholRow> rows;
  for (int nt = 4; nt <= maxt; nt += 4) {
    CholRow r = measure(procs, nt, tile);
    rows.push_back(r);
    const double speedup =
        r.dag.elapsed_ms > 0 ? r.stat.elapsed_ms / r.dag.elapsed_ms : 0;
    t.add_row({Table::fmt(std::int64_t{nt}),
               Table::fmt(static_cast<std::int64_t>(r.dag.tasks_run)),
               Table::fmt(r.dag.elapsed_ms, 3),
               Table::fmt(r.stat.elapsed_ms, 3), Table::fmt(speedup, 2),
               Table::fmt(static_cast<std::int64_t>(r.dag.dag.remote_fires)),
               Table::fmt(r.dag.residual, 3)});
  }
  t.print("Tiled Cholesky on " + std::to_string(procs) +
          " ranks: dataflow DAG schedule vs static owner-computes "
          "fork-join (virtual time; same kernels, same charges)");

  if (flow) {
    // A dedicated DAG-only traced run (the timing loop above interleaves
    // the static schedule into the same SPMD region, which would blur the
    // lineage timeline): where did the factorization's longest
    // spawn -> steal -> exec chain actually spend its time?
    pgas::Config cfg;
    cfg.nranks = procs;
    cfg.backend = pgas::BackendKind::Sim;
    cfg.machine = sim::cluster2008_uniform();
    apps::CholeskyConfig ccfg;
    ccfg.tiles = maxt;
    ccfg.tile = tile;
    trace::start(procs);
    trace::lineage::start(procs);
    std::uint64_t tasks_run = 0;
    pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
      apps::CholeskyResult d = apps::cholesky_dag(rt, ccfg);
      if (rt.me() == 0) {
        tasks_run = d.tasks_run;
      }
    });
    const std::vector<trace::Event> evs = trace::all_events();
    trace::LineageReport rep =
        trace::lineage_report(evs, procs, trace::total_dropped());
    trace::lineage_table(rep).print(
        "lineage span analytics, DAG schedule at max tiles");
    // The TC runs one dispatch task per *firing*, and a node whose
    // conflict-group CAS lost (or whose version gate was not open yet)
    // parks and re-fires as a fresh task -- so lineage execs exceed tile
    // kernels by exactly the re-dispatches.
    SCIOTO_CHECK_MSG(rep.execs >= tasks_run,
                     "lineage execs " << rep.execs
                                      << " < tile tasks " << tasks_run);
    std::printf("lineage: %llu dispatch tasks for %llu tile kernels "
                "(%llu conflict/version re-fires)\n",
                static_cast<unsigned long long>(rep.execs),
                static_cast<unsigned long long>(tasks_run),
                static_cast<unsigned long long>(rep.execs - tasks_run));
    trace::CriticalPath cp = trace::critical_path(rep, evs, procs);
    trace::critical_path_table(cp).print(
        "weighted critical path (longest spawn -> steal -> exec chain)");
    std::vector<int> order(cp.rank_blame.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int>(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (cp.rank_blame[a] != cp.rank_blame[b]) {
        return cp.rank_blame[a] > cp.rank_blame[b];
      }
      return a < b;
    });
    std::printf("critical-path blame:");
    for (std::size_t i = 0; i < order.size() && i < 3; ++i) {
      std::printf("%s rank %d (%.1f us)", i ? "," : "", order[i],
                  static_cast<double>(cp.rank_blame[order[i]]) / 1e3);
    }
    std::printf(" -- %.1f us total over %llu tasks, %.1f us exec / "
                "%.1f us waiting, spawn-to-exec p99 %llu ns, "
                "%zu hb violations\n",
                static_cast<double>(cp.length) / 1e3,
                static_cast<unsigned long long>(cp.tasks),
                static_cast<double>(cp.exec_ns) / 1e3,
                static_cast<double>(cp.queue_ns) / 1e3,
                static_cast<unsigned long long>(
                    rep.spawn_to_exec.percentile(99)),
                rep.violations.size());
    trace::lineage::stop();
    trace::stop();
  }

  const std::string json = opts.get_string("json");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << json);
    std::fprintf(f,
                 "{\n  \"bench\": \"dag_cholesky\", \"procs\": %d, "
                 "\"tile\": %d,\n  \"rows\": [\n",
                 procs, tile);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CholRow& r = rows[i];
      const double speedup =
          r.dag.elapsed_ms > 0 ? r.stat.elapsed_ms / r.dag.elapsed_ms : 0;
      std::fprintf(f,
                   "    {\"tiles\": %d, \"tasks\": %llu, "
                   "\"dag_ms\": %.3f, \"static_ms\": %.3f, "
                   "\"speedup\": %.3f, \"remote_fires\": %llu, "
                   "\"residual\": %.3e}%s\n",
                   r.tiles,
                   static_cast<unsigned long long>(r.dag.tasks_run),
                   r.dag.elapsed_ms, r.stat.elapsed_ms, speedup,
                   static_cast<unsigned long long>(r.dag.dag.remote_fires),
                   r.dag.residual, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json: wrote %s\n", json.c_str());
  }
  return 0;
}
