// Adaptive control plane vs hand-tuned static configs on bursty UTS.
//
// The claim under test (the control subsystem's win condition): starting
// from the *default* configuration (chunk 10, fixed-width steals, stock
// release threshold), the online controller -- local or global placement,
// default rules -- matches or beats the best hand-picked static chunk on
// the bursty binomial tree, because it discovers mid-run what the static
// sweep needs a full grid search to find (steal-half + eager release
// while the root burst drains, then calmer settings as the fleet evens
// out). Every decision it took is available as a JSONL log and as
// knob_change trace events.
//
// Also measures the metrics fast path the local controller rides on:
// own-rank counter reads via direct relaxed loads (metrics::own_ctr)
// against the general seqlock scrape -- the difference is why a per-rank
// controller can poll every scheduling iteration.
#include <chrono>
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "control/control.hpp"
#include "metrics/metrics.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

// The PR 3 ablation grid's static chunk rows: the hand-tuned field the
// adaptive controller must beat from its default starting point.
const int kStaticChunks[] = {1, 2, 5, 10, 20, 50};

UtsResult run_once(const UtsParams& tree, int procs, int chunk) {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();
  UtsRunConfig rc;
  rc.chunk = chunk;
  UtsResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    res = uts_run_scioto(rt, tree, rc);
  });
  return res;
}

// Microbenchmark: ns per own-counter read (relaxed load fast path) vs ns
// per seqlock scrape of the full patch. Wall-clock, order-of-magnitude
// numbers -- the point is the ratio, not the absolute timing.
void fastpath_micro(double* fast_ns, double* scrape_ns) {
  metrics::start(1);
  metrics::counter_add(0, metrics::Ctr::TasksExecuted, 123);
  const int iters = 200000;
  volatile std::uint64_t sink = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink = sink + metrics::own_ctr(0, metrics::Ctr::TasksExecuted);
  }
  auto t1 = std::chrono::steady_clock::now();
  metrics::Snapshot snap;
  for (int i = 0; i < iters; ++i) {
    metrics::scrape(0, &snap);
    sink = sink + snap.ctr(metrics::Ctr::TasksExecuted);
  }
  auto t2 = std::chrono::steady_clock::now();
  metrics::stop();
  *fast_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
             iters;
  *scrape_ns = std::chrono::duration<double, std::nano>(t2 - t1).count() /
               iters;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_control_uts",
               "adaptive controller vs static configs on bursty UTS");
  opts.add_int("procs", 8, "process count");
  opts.add_string("json", "", "also write results as JSON to this file");
  if (!opts.parse(argc, argv)) return 0;
  const int procs = static_cast<int>(opts.get_int("procs"));
  const std::string json = opts.get_string("json");

  // The T2 bursty binomial workload from the chunk ablation: a wide root
  // fan-out into heavy-tailed subcritical subtrees -- deep victims one
  // moment, dry ones the next. This is the shape online adaptation is for.
  UtsParams t2;
  t2.tree = UtsTree::Binomial;
  t2.seed = 42;
  t2.b0 = 2000;
  t2.q = 0.120;
  t2.m = 8;
  UtsCounts expected = uts_sequential(t2);
  std::printf("workload T2 binomial-bursty: %s, %llu nodes on %d procs "
              "(heterogeneous cluster)\n",
              uts_describe(t2).c_str(),
              static_cast<unsigned long long>(expected.nodes), procs);

  Table t({"Config", "Throughput(Mn/s)", "Steals", "Tasks/Steal",
           "Decisions"});
  double best_static = 0.0;
  double static_tp[sizeof(kStaticChunks) / sizeof(kStaticChunks[0])] = {};
  int si = 0;
  for (int chunk : kStaticChunks) {
    UtsResult res = run_once(t2, procs, chunk);
    SCIOTO_CHECK_MSG(res.counts == expected, "traversal mismatch");
    best_static = std::max(best_static, res.mnodes_per_sec);
    static_tp[si++] = res.mnodes_per_sec;
    char label[32];
    std::snprintf(label, sizeof(label), "static %d", chunk);
    t.add_row({label, Table::fmt(res.mnodes_per_sec, 2),
               Table::fmt(static_cast<std::int64_t>(res.steals)),
               Table::fmt(res.steals
                              ? static_cast<double>(res.tasks_stolen) /
                                    static_cast<double>(res.steals)
                              : 0.0,
                          2),
               "-"});
  }

  double adaptive_tp[2] = {0.0, 0.0};
  std::uint64_t adaptive_decisions[2] = {0, 0};
  const control::Mode modes[2] = {control::Mode::Local,
                                  control::Mode::Global};
  const char* mode_labels[2] = {"adaptive local", "adaptive global"};
  for (int m = 0; m < 2; ++m) {
    // Stage the controller; run_spmd arms it (and the metrics plane it
    // reads) inside the run. Everything else stays at defaults -- this is
    // the "no hand-tuning" row.
    control::Config cc = control::config();
    cc.mode = modes[m];
    control::set_config(cc);
    UtsResult res = run_once(t2, procs, /*chunk=*/10);
    cc.mode = control::Mode::Off;
    control::set_config(cc);
    SCIOTO_CHECK_MSG(res.counts == expected, "traversal mismatch");
    control::Stats cs = control::stats();
    adaptive_tp[m] = res.mnodes_per_sec;
    adaptive_decisions[m] = cs.decisions;
    t.add_row({mode_labels[m], Table::fmt(res.mnodes_per_sec, 2),
               Table::fmt(static_cast<std::int64_t>(res.steals)),
               Table::fmt(res.steals
                              ? static_cast<double>(res.tasks_stolen) /
                                    static_cast<double>(res.steals)
                              : 0.0,
                          2),
               Table::fmt(static_cast<std::int64_t>(cs.decisions))});
  }
  t.print("Adaptive controller (default config) vs static chunk grid "
          "(UTS T2, Scioto split queues)");
  std::printf("best static %.2f Mn/s; adaptive local %.2f (%.3fx), "
              "global %.2f (%.3fx)\n",
              best_static, adaptive_tp[0], adaptive_tp[0] / best_static,
              adaptive_tp[1], adaptive_tp[1] / best_static);

  double fast_ns = 0, scrape_ns = 0;
  fastpath_micro(&fast_ns, &scrape_ns);
  std::printf("metrics fast path: own_ctr %.1f ns/read vs scrape %.1f "
              "ns/snapshot (%.0fx)\n",
              fast_ns, scrape_ns, scrape_ns / fast_ns);

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << json);
    std::fprintf(f, "{\n  \"workload\": \"T2-binomial-bursty\",\n");
    std::fprintf(f, "  \"procs\": %d,\n  \"nodes\": %llu,\n", procs,
                 static_cast<unsigned long long>(expected.nodes));
    std::fprintf(f, "  \"static\": {");
    for (std::size_t i = 0; i < sizeof(kStaticChunks) / sizeof(int); ++i) {
      std::fprintf(f, "%s\"%d\": %.4f", i ? ", " : "", kStaticChunks[i],
                   static_tp[i]);
    }
    std::fprintf(f, "},\n  \"best_static_mnps\": %.4f,\n", best_static);
    std::fprintf(f, "  \"adaptive_local_mnps\": %.4f,\n", adaptive_tp[0]);
    std::fprintf(f, "  \"adaptive_global_mnps\": %.4f,\n", adaptive_tp[1]);
    std::fprintf(f, "  \"adaptive_local_decisions\": %llu,\n",
                 static_cast<unsigned long long>(adaptive_decisions[0]));
    std::fprintf(f, "  \"adaptive_global_decisions\": %llu,\n",
                 static_cast<unsigned long long>(adaptive_decisions[1]));
    std::fprintf(f, "  \"fastpath_own_ctr_ns\": %.2f,\n", fast_ns);
    std::fprintf(f, "  \"fastpath_scrape_ns\": %.2f\n}\n", scrape_ns);
    std::fclose(f);
    std::printf("json: wrote %s\n", json.c_str());
  }
  return 0;
}
