// Figure 7 reproduction: UTS throughput on the heterogeneous cluster for
// (a) Scioto with split queues, (b) the two-sided MPI work-stealing
// baseline, and (c) Scioto with the original fully locked queues
// ("No Split"), on 2..64 processes (paper §6.3, Figure 7).
//
// Cluster model: half Opteron nodes at 0.3158 us per UTS node, half Xeon
// at 0.4753 us (a 50% spread), so "doubling the number of nodes also
// doubles the resources even though the processors are not of uniform
// speed".
//
// Expected shape: split-queue Scioto and MPI-WS both scale near-linearly
// with Scioto ahead (no explicit polling); the no-split variant collapses
// to a flat line because every local queue operation contends for the
// same lock remote thieves use.
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

UtsResult run_one(int procs, const UtsParams& tree, const UtsRunConfig& rc,
                  bool mpi_ws, const std::string& trace_file = "",
                  const std::string& fault_spec = "", bool live = false) {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();  // heterogeneous: half Opteron half Xeon
  const bool tracing = !trace_file.empty();
  if (tracing) {
    trace::start(procs);
  }
  // --fault-plan routes the split-queue series through the fault-tolerant
  // driver: ranks die mid-traversal, survivors adopt their work, and the
  // traversal-count check below still demands an exact match.
  const bool faulting = !fault_spec.empty() && !mpi_ws;
  if (faulting) {
    fault::start(procs, fault::FaultPlan::parse(fault_spec), cfg.seed);
  }
  // --live: bench-owned metrics session + TTY dashboard over the fleet
  // (run_spmd leaves an already-active session to its owner).
  const bool dashboard = live && !mpi_ws && SCIOTO_METRICS_ENABLED;
  if (dashboard) {
    metrics::start(procs);
    metrics::MonitorOptions mopts;
    mopts.live = true;
    metrics::monitor_start(procs, mopts);
    if (faulting) {
      metrics::monitor_set_liveness([](Rank r) {
        return fault::alive(r) ? metrics::RankState::Alive
                               : metrics::RankState::Dead;
      });
    }
  }
  UtsResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    res = mpi_ws     ? uts_run_mpi_ws(rt, tree, rc)
          : faulting ? uts_run_scioto_ft(rt, tree, rc)
                     : uts_run_scioto(rt, tree, rc);
  });
  if (dashboard) {
    const std::size_t samples = metrics::monitor_samples().size();
    metrics::monitor_stop();
    metrics::stop();
    std::printf("live monitor: %zu samples at %d procs\n", samples, procs);
  }
  if (faulting) {
    fault::Summary s = fault::summary();
    std::printf("faults at %d procs: %lld kills, %d survivors, "
                "%llu tasks recovered\n",
                procs, s.kills, res.survivors,
                static_cast<unsigned long long>(res.stats.tasks_recovered));
    fault::stop();
  }
  if (tracing) {
    if (trace::write_chrome_trace_file(trace_file)) {
      std::printf("trace: wrote %s (%d ranks)\n", trace_file.c_str(), procs);
    }
    trace::stop();
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_fig7_uts_cluster",
               "Figure 7: UTS on the heterogeneous cluster");
  opts.add_int("scale", 11, "geometric tree depth (gen_mx); 11 ~= 408k nodes");
  opts.add_int("max-procs", 64, "largest process count");
  opts.add_int("chunk", 10, "steal chunk size");
  opts.add_string("trace", "",
                  "write a Chrome trace JSON of the split-queue run at "
                  "max-procs to this file");
  opts.add_string("fault-plan", "",
                  "fault plan (spec/JSON/@file) injected into the "
                  "split-queue run at max-procs; the traversal must still "
                  "match the sequential node count exactly");
  opts.add_flag("live", false,
                "render the live fleet dashboard (queue depths, imbalance, "
                "steal rates) during the split-queue run at max-procs");
  if (!opts.parse(argc, argv)) return 0;
  const bool live = opts.get_flag("live");
  if (live && !SCIOTO_METRICS_ENABLED) {
    std::printf("--live: metrics compiled out (SCIOTO_METRICS=OFF); "
                "skipping dashboard\n");
  }

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsCounts expected = uts_sequential(tree);
  std::printf("workload: %s, %llu nodes\n", uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes));

  UtsRunConfig rc;
  rc.node_cost = ns(316);  // 0.3158 us/node on the Opteron (§6.3)
  rc.chunk = static_cast<int>(opts.get_int("chunk"));

  Table t({"Procs", "Split-Queues(Mn/s)", "MPI-WS(Mn/s)", "No-Split(Mn/s)"});
  const int maxp = static_cast<int>(opts.get_int("max-procs"));
  for (int p = 2; p <= maxp; p *= 2) {
    UtsRunConfig split_rc = rc;
    const std::string trace_file =
        p == maxp ? opts.get_string("trace") : std::string();
    const std::string fault_spec =
        p == maxp ? opts.get_string("fault-plan") : std::string();
    UtsResult split = run_one(p, tree, split_rc, /*mpi_ws=*/false, trace_file,
                              fault_spec, live && p == maxp);
    SCIOTO_CHECK_MSG(split.counts == expected, "split traversal mismatch");

    UtsResult mpi = run_one(p, tree, rc, /*mpi_ws=*/true);
    SCIOTO_CHECK_MSG(mpi.counts == expected, "mpi-ws traversal mismatch");

    UtsRunConfig ns_rc = rc;
    ns_rc.queue_mode = QueueMode::NoSplit;
    UtsResult nosplit = run_one(p, tree, ns_rc, /*mpi_ws=*/false);
    SCIOTO_CHECK_MSG(nosplit.counts == expected, "no-split traversal mismatch");

    t.add_row({Table::fmt(std::int64_t{p}),
               Table::fmt(split.mnodes_per_sec, 2),
               Table::fmt(mpi.mnodes_per_sec, 2),
               Table::fmt(nosplit.mnodes_per_sec, 2)});
  }
  t.print("Figure 7: UTS performance on the cluster -- Scioto split "
          "queues vs MPI work stealing vs no-split (Mnodes/s; paper peaks "
          "~75/65/8 at 64 procs)");
  return 0;
}
