// Figure 7 reproduction: UTS throughput on the heterogeneous cluster for
// (a) Scioto with split queues, (b) the two-sided MPI work-stealing
// baseline, and (c) Scioto with the original fully locked queues
// ("No Split"), on 2..64 processes (paper §6.3, Figure 7).
//
// Cluster model: half Opteron nodes at 0.3158 us per UTS node, half Xeon
// at 0.4753 us (a 50% spread), so "doubling the number of nodes also
// doubles the resources even though the processors are not of uniform
// speed".
//
// Expected shape: split-queue Scioto and MPI-WS both scale near-linearly
// with Scioto ahead (no explicit polling); the no-split variant collapses
// to a flat line because every local queue operation contends for the
// same lock remote thieves use.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

UtsResult run_one(int procs, const UtsParams& tree, const UtsRunConfig& rc,
                  bool mpi_ws, const std::string& trace_file = "",
                  const std::string& fault_spec = "", bool live = false,
                  bool flow = false, const std::string& flow_json = "") {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();  // heterogeneous: half Opteron half Xeon
  // --flow needs the trace rings even when no Chrome file was asked for:
  // the lineage analytics below rebuild the causal timeline from them.
  const bool tracing = !trace_file.empty() || flow;
  if (tracing) {
    trace::start(procs);
  }
  if (flow) {
    trace::lineage::start(procs);
  }
  // --fault-plan routes the split-queue series through the fault-tolerant
  // driver: ranks die mid-traversal, survivors adopt their work, and the
  // traversal-count check below still demands an exact match.
  const bool faulting = !fault_spec.empty() && !mpi_ws;
  if (faulting) {
    fault::start(procs, fault::FaultPlan::parse(fault_spec), cfg.seed);
  }
  // --live: bench-owned metrics session + TTY dashboard over the fleet
  // (run_spmd leaves an already-active session to its owner).
  const bool dashboard = live && !mpi_ws && SCIOTO_METRICS_ENABLED;
  if (dashboard) {
    metrics::start(procs);
    metrics::MonitorOptions mopts;
    mopts.live = true;
    metrics::monitor_start(procs, mopts);
    if (faulting) {
      metrics::monitor_set_liveness([](Rank r) {
        return fault::alive(r) ? metrics::RankState::Alive
                               : metrics::RankState::Dead;
      });
    }
  }
  UtsResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    res = mpi_ws     ? uts_run_mpi_ws(rt, tree, rc)
          : faulting ? uts_run_scioto_ft(rt, tree, rc)
                     : uts_run_scioto(rt, tree, rc);
  });
  if (dashboard) {
    const std::size_t samples = metrics::monitor_samples().size();
    metrics::monitor_stop();
    metrics::stop();
    std::printf("live monitor: %zu samples at %d procs\n", samples, procs);
  }
  if (faulting) {
    fault::Summary s = fault::summary();
    std::printf("faults at %d procs: %lld kills, %d survivors, "
                "%llu tasks recovered\n",
                procs, s.kills, res.survivors,
                static_cast<unsigned long long>(res.stats.tasks_recovered));
    fault::stop();
  }
  if (tracing) {
    if (!trace_file.empty() && trace::write_chrome_trace_file(trace_file)) {
      std::printf("trace: wrote %s (%d ranks)\n", trace_file.c_str(), procs);
    }
    if (flow) {
      std::vector<trace::Event> evs = trace::all_events();
      trace::LineageReport rep =
          trace::lineage_report(evs, procs, trace::total_dropped());
      trace::CriticalPath cp = trace::critical_path(rep, evs, procs);
      trace::critical_path_table(cp).print(
          "weighted critical path at max procs (longest spawn -> steal -> "
          "exec chain)");
      std::vector<int> order(cp.rank_blame.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
      }
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (cp.rank_blame[a] != cp.rank_blame[b]) {
          return cp.rank_blame[a] > cp.rank_blame[b];
        }
        return a < b;
      });
      std::printf("critical-path blame:");
      for (std::size_t i = 0; i < order.size() && i < 3; ++i) {
        std::printf("%s rank %d (%.1f us)", i ? "," : "", order[i],
                    static_cast<double>(cp.rank_blame[order[i]]) / 1e3);
      }
      std::printf(" -- %.1f us total over %llu tasks, "
                  "spawn-to-exec p99 %llu ns, %zu hb violations\n",
                  static_cast<double>(cp.length) / 1e3,
                  static_cast<unsigned long long>(cp.tasks),
                  static_cast<unsigned long long>(
                      rep.spawn_to_exec.percentile(99)),
                  rep.violations.size());
      if (!flow_json.empty()) {
        std::FILE* f = std::fopen(flow_json.c_str(), "w");
        SCIOTO_CHECK_MSG(f != nullptr, "cannot open " << flow_json);
        std::fprintf(f, "{\n  \"workload\": \"%s\",\n  \"procs\": %d,\n",
                     uts_describe(tree).c_str(), procs);
        std::fprintf(f, "  \"tasks_spawned\": %llu,\n"
                     "  \"tasks_executed\": %llu,\n  \"migrations\": %llu,\n",
                     static_cast<unsigned long long>(rep.spawns),
                     static_cast<unsigned long long>(rep.execs),
                     static_cast<unsigned long long>(rep.migrations));
        std::fprintf(f, "  \"hb_violations\": %zu,\n  \"max_hops\": %llu,\n",
                     rep.violations.size(),
                     static_cast<unsigned long long>(rep.max_hops));
        std::fprintf(f, "  \"spawn_exec_p50_ns\": %llu,\n"
                     "  \"spawn_exec_p99_ns\": %llu,\n"
                     "  \"spawn_exec_max_ns\": %llu,\n",
                     static_cast<unsigned long long>(
                         rep.spawn_to_exec.percentile(50)),
                     static_cast<unsigned long long>(
                         rep.spawn_to_exec.percentile(99)),
                     static_cast<unsigned long long>(rep.spawn_to_exec.max));
        std::fprintf(f, "  \"critical_path_ns\": %lld,\n"
                     "  \"critical_path_exec_ns\": %lld,\n"
                     "  \"critical_path_queue_ns\": %lld,\n"
                     "  \"critical_path_tasks\": %llu\n}\n",
                     static_cast<long long>(cp.length),
                     static_cast<long long>(cp.exec_ns),
                     static_cast<long long>(cp.queue_ns),
                     static_cast<unsigned long long>(cp.tasks));
        std::fclose(f);
        std::printf("flow json: wrote %s\n", flow_json.c_str());
      }
      trace::lineage::stop();
    }
    trace::stop();
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_fig7_uts_cluster",
               "Figure 7: UTS on the heterogeneous cluster");
  opts.add_int("scale", 11, "geometric tree depth (gen_mx); 11 ~= 408k nodes");
  opts.add_string("tree", "geo",
                  "tree family: geo (paper's Figure 7 workload) | bin (the "
                  "T2 bursty binomial from the control-plane benches; "
                  "--scale sets the root burst b0)");
  opts.add_int("max-procs", 64, "largest process count");
  opts.add_int("chunk", 10, "steal chunk size");
  opts.add_string("trace", "",
                  "write a Chrome trace JSON of the split-queue run at "
                  "max-procs to this file");
  opts.add_string("fault-plan", "",
                  "fault plan (spec/JSON/@file) injected into the "
                  "split-queue run at max-procs; the traversal must still "
                  "match the sequential node count exactly");
  opts.add_flag("live", false,
                "render the live fleet dashboard (queue depths, imbalance, "
                "steal rates) during the split-queue run at max-procs");
  opts.add_flag("flow", false,
                "stamp task lineage on the split-queue run at max-procs: "
                "flow arrows in --trace output, critical path + top-3 "
                "blame ranks printed after the run");
  opts.add_string("flow-json", "",
                  "write the --flow lineage stats (spawn-to-exec p99, "
                  "critical path) as JSON to this file");
  if (!opts.parse(argc, argv)) return 0;
  const bool live = opts.get_flag("live");
  bool flow = opts.get_flag("flow");
  if (flow && !SCIOTO_LINEAGE_ENABLED) {
    std::printf("--flow: lineage compiled out (SCIOTO_LINEAGE=OFF); "
                "skipping flow analytics\n");
    flow = false;
  }
  if (live && !SCIOTO_METRICS_ENABLED) {
    std::printf("--live: metrics compiled out (SCIOTO_METRICS=OFF); "
                "skipping dashboard\n");
  }

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  if (opts.get_string("tree") == "bin") {
    // The T2 bursty binomial from bench_control_uts: a wide root burst
    // (b0 children at once) into near-critical binomial decay -- the
    // workload whose steal chains make the lineage critical path
    // interesting. --scale overrides the burst width.
    tree = UtsParams{};
    tree.tree = UtsTree::Binomial;
    tree.seed = 42;
    tree.b0 = 2000;
    tree.q = 0.120;
    tree.m = 8;
    if (opts.get_int("scale") != 11) {
      tree.b0 = static_cast<int>(opts.get_int("scale"));
    }
  }
  UtsCounts expected = uts_sequential(tree);
  std::printf("workload: %s, %llu nodes\n", uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes));

  UtsRunConfig rc;
  rc.node_cost = ns(316);  // 0.3158 us/node on the Opteron (§6.3)
  rc.chunk = static_cast<int>(opts.get_int("chunk"));

  Table t({"Procs", "Split-Queues(Mn/s)", "MPI-WS(Mn/s)", "No-Split(Mn/s)"});
  const int maxp = static_cast<int>(opts.get_int("max-procs"));
  for (int p = 2; p <= maxp; p *= 2) {
    UtsRunConfig split_rc = rc;
    const std::string trace_file =
        p == maxp ? opts.get_string("trace") : std::string();
    const std::string fault_spec =
        p == maxp ? opts.get_string("fault-plan") : std::string();
    UtsResult split = run_one(p, tree, split_rc, /*mpi_ws=*/false, trace_file,
                              fault_spec, live && p == maxp, flow && p == maxp,
                              p == maxp ? opts.get_string("flow-json")
                                        : std::string());
    SCIOTO_CHECK_MSG(split.counts == expected, "split traversal mismatch");

    UtsResult mpi = run_one(p, tree, rc, /*mpi_ws=*/true);
    SCIOTO_CHECK_MSG(mpi.counts == expected, "mpi-ws traversal mismatch");

    UtsRunConfig ns_rc = rc;
    ns_rc.queue_mode = QueueMode::NoSplit;
    UtsResult nosplit = run_one(p, tree, ns_rc, /*mpi_ws=*/false);
    SCIOTO_CHECK_MSG(nosplit.counts == expected, "no-split traversal mismatch");

    t.add_row({Table::fmt(std::int64_t{p}),
               Table::fmt(split.mnodes_per_sec, 2),
               Table::fmt(mpi.mnodes_per_sec, 2),
               Table::fmt(nosplit.mnodes_per_sec, 2)});
  }
  t.print("Figure 7: UTS performance on the cluster -- Scioto split "
          "queues vs MPI work stealing vs no-split (Mnodes/s; paper peaks "
          "~75/65/8 at 64 procs)");
  return 0;
}
