// Ablation: multicore-aware victim selection (the paper's §8 "multicore
// scheduling enhancements").
//
// The 2008 cluster is remodeled as 8-core nodes: ranks sharing a node
// reach each other's queues through shared memory (sub-microsecond)
// instead of the NIC (tens of microseconds). Biasing steal attempts
// toward same-node victims turns most steals into cheap intra-node moves;
// the bias must stay below 1.0 or inter-node imbalance can never drain.
#include <cstdio>

#include "apps/uts/uts.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "scioto/task_collection.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

struct McResult {
  double mnodes = 0;
  std::uint64_t steals = 0;
  std::uint64_t steals_same_node = 0;
};

McResult run(int procs, int cores, double bias, const UtsParams& tree,
             const UtsCounts& expected) {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::multicore_cluster(cores);
  McResult out;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    TcConfig tcc;
    tcc.max_task_body = sizeof(UtsNode);
    tcc.node_steal_bias = bias;
    TaskCollection tc(rt, tcc);
    UtsCounts local;
    CloHandle clo = tc.register_clo(&local);
    TaskHandle h = tc.register_callback([&, clo](TaskContext& ctx) {
      UtsCounts& counts = ctx.tc.clo<UtsCounts>(clo);
      UtsNode node = ctx.body_as<UtsNode>();
      for (;;) {
        ctx.tc.runtime().charge(ns(316));
        ++counts.nodes;
        int nc = uts_num_children(node, tree);
        if (nc == 0) break;
        for (int i = 1; i < nc; ++i) {
          Task t = ctx.tc.task_create(sizeof(UtsNode), ctx.header.callback);
          t.body_as<UtsNode>() = uts_child(node, i);
          ctx.tc.add_local(t);
        }
        node = uts_child(node, 0);
      }
    });
    if (rt.me() == 0) {
      Task t = tc.task_create(sizeof(UtsNode), h);
      t.body_as<UtsNode>() = uts_root(tree);
      tc.add_local(t);
    }
    rt.barrier();
    TimeNs t0 = rt.now();
    tc.process();
    TimeNs elapsed = rt.allreduce_max(rt.now() - t0);
    std::uint64_t nodes = rt.allreduce_sum(local.nodes);
    SCIOTO_CHECK_MSG(nodes == expected.nodes, "traversal mismatch");
    TcStats g = tc.stats_global();
    if (rt.me() == 0) {
      out.mnodes = static_cast<double>(nodes) / (to_sec(elapsed) * 1e6);
      out.steals = g.steals;
      out.steals_same_node = g.steals_same_node;
    }
    tc.destroy();
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_ablation_multicore",
               "same-node steal bias on an 8-core-per-node cluster");
  opts.add_int("procs", 64, "process count");
  opts.add_int("cores", 8, "cores (ranks) per node");
  opts.add_int("scale", 11, "geometric tree depth");
  if (!opts.parse(argc, argv)) return 0;
  const int procs = static_cast<int>(opts.get_int("procs"));
  const int cores = static_cast<int>(opts.get_int("cores"));

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsCounts expected = uts_sequential(tree);
  std::printf("workload: %s, %llu nodes on %d procs (%d cores/node)\n",
              uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes), procs, cores);

  Table t({"NodeBias", "Mnodes/s", "Steals", "SameNode%"});
  for (double bias : {0.0, 0.5, 0.75, 0.9}) {
    McResult r = run(procs, cores, bias, tree, expected);
    double frac = r.steals
                      ? 100.0 * static_cast<double>(r.steals_same_node) /
                            static_cast<double>(r.steals)
                      : 0.0;
    t.add_row({Table::fmt(bias, 2), Table::fmt(r.mnodes, 2),
               Table::fmt(static_cast<std::int64_t>(r.steals)),
               Table::fmt(frac, 1)});
  }
  t.print("Ablation: §8 multicore scheduling -- biasing steals toward "
          "same-node victims (shared-memory transfers)");
  return 0;
}
