// Ablation: the release threshold (how eagerly the owner moves private
// tasks into the shared, stealable portion of its split queue).
//
// Releasing too eagerly makes the owner pay the locked reacquire path when
// it wants its own work back; hoarding starves thieves. This is the knob
// DESIGN.md calls out alongside the split-vs-no-split headline ablation.
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "scioto/task_collection.hpp"

using namespace scioto;
using namespace scioto::apps;

int main(int argc, char** argv) {
  Options opts("bench_ablation_release", "release-threshold sweep on UTS");
  opts.add_int("procs", 32, "process count");
  opts.add_int("scale", 11, "geometric tree depth");
  if (!opts.parse(argc, argv)) return 0;
  const int procs = static_cast<int>(opts.get_int("procs"));

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsCounts expected = uts_sequential(tree);
  std::printf("workload: %s, %llu nodes on %d procs\n",
              uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes), procs);

  Table t({"ReleaseThreshold", "Mnodes/s", "Releases", "Reacquires",
           "Steals"});
  for (std::uint64_t threshold : {1u, 4u, 10u, 20u, 40u, 80u}) {
    pgas::Config cfg;
    cfg.nranks = procs;
    cfg.backend = pgas::BackendKind::Sim;
    cfg.machine = sim::cluster2008();
    TcStats stats{};
    UtsResult res;
    pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
      TcConfig tcc;
      tcc.max_task_body = sizeof(UtsNode);
      tcc.release_threshold = threshold;
      // Reuse the standard driver path by configuring through TcConfig:
      // replicate uts_run_scioto with a custom threshold.
      TaskCollection tc(rt, tcc);
      UtsCounts local;
      CloHandle clo = tc.register_clo(&local);
      TaskHandle h = tc.register_callback([&, clo](TaskContext& ctx) {
        UtsCounts& counts = ctx.tc.clo<UtsCounts>(clo);
        UtsNode node = ctx.body_as<UtsNode>();
        for (;;) {
          ctx.tc.runtime().charge(ns(316));
          ++counts.nodes;
          int nc = uts_num_children(node, tree);
          if (nc == 0) break;
          for (int i = 1; i < nc; ++i) {
            Task child =
                ctx.tc.task_create(sizeof(UtsNode), ctx.header.callback);
            child.body_as<UtsNode>() = uts_child(node, i);
            ctx.tc.add_local(child);
          }
          node = uts_child(node, 0);
        }
      });
      if (rt.me() == 0) {
        Task t = tc.task_create(sizeof(UtsNode), h);
        t.body_as<UtsNode>() = uts_root(tree);
        tc.add_local(t);
      }
      rt.barrier();
      TimeNs t0 = rt.now();
      tc.process();
      TimeNs elapsed = rt.allreduce_max(rt.now() - t0);
      std::uint64_t nodes = rt.allreduce_sum(local.nodes);
      TcStats g = tc.stats_global();
      if (rt.me() == 0) {
        res.mnodes_per_sec =
            static_cast<double>(nodes) / (to_sec(elapsed) * 1e6);
        res.counts.nodes = nodes;
        stats = g;
      }
      tc.destroy();
    });
    SCIOTO_CHECK_MSG(res.counts.nodes == expected.nodes,
                     "traversal mismatch");
    t.add_row({Table::fmt(static_cast<std::int64_t>(threshold)),
               Table::fmt(res.mnodes_per_sec, 2),
               Table::fmt(static_cast<std::int64_t>(stats.releases)),
               Table::fmt(static_cast<std::int64_t>(stats.reacquires)),
               Table::fmt(static_cast<std::int64_t>(stats.steals))});
  }
  t.print("Ablation: split-queue release threshold (UTS, Scioto)");
  return 0;
}
