// Figure 8 reproduction: UTS throughput under Scioto vs the MPI
// work-stealing baseline on the Cray XT4 at 64..512 processes (paper
// §6.3, Figure 8). Per-node processing cost 0.5681 us (§6.3).
//
// Expected shape: both scale near-linearly to 512 processes with Scioto
// ahead of MPI (the paper reads ~700 vs ~620 Mnodes/s at 512), the gap
// coming from one-sided steals not needing the victim to poll.
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"

using namespace scioto;
using namespace scioto::apps;

int main(int argc, char** argv) {
  Options opts("bench_fig8_uts_xt4", "Figure 8: UTS at scale on the XT4");
  opts.add_int("scale", 13, "geometric tree depth (gen_mx); 13 ~= 2.9M nodes");
  opts.add_int("max-procs", 512, "largest process count");
  opts.add_int("chunk", 10, "steal chunk size");
  if (!opts.parse(argc, argv)) return 0;

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsCounts expected = uts_sequential(tree);
  std::printf("workload: %s, %llu nodes\n", uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes));

  UtsRunConfig rc;
  rc.node_cost = ns(568);  // 0.5681 us per node on the XT4 (§6.3)
  rc.chunk = static_cast<int>(opts.get_int("chunk"));
  rc.max_tasks = 1 << 13;  // keep 512 ranks' queues memory-friendly

  Table t({"Procs", "UTS-Scioto(Mn/s)", "UTS-MPI(Mn/s)", "Scioto/MPI"});
  const int maxp = static_cast<int>(opts.get_int("max-procs"));
  for (int p = 64; p <= maxp; p *= 2) {
    pgas::Config cfg;
    cfg.nranks = p;
    cfg.backend = pgas::BackendKind::Sim;
    cfg.machine = sim::cray_xt4();
    cfg.stack_bytes = 192 * 1024;

    UtsResult scioto_res, mpi_res;
    pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
      scioto_res = uts_run_scioto(rt, tree, rc);
    });
    SCIOTO_CHECK_MSG(scioto_res.counts == expected,
                     "scioto traversal mismatch");
    pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
      mpi_res = uts_run_mpi_ws(rt, tree, rc);
    });
    SCIOTO_CHECK_MSG(mpi_res.counts == expected, "mpi traversal mismatch");

    t.add_row({Table::fmt(std::int64_t{p}),
               Table::fmt(scioto_res.mnodes_per_sec, 2),
               Table::fmt(mpi_res.mnodes_per_sec, 2),
               Table::fmt(scioto_res.mnodes_per_sec /
                              mpi_res.mnodes_per_sec, 3)});
  }
  t.print("Figure 8: UTS under Scioto and MPI on the Cray XT4 (Mnodes/s; "
          "paper reads ~700 vs ~620 at 512 procs)");
  return 0;
}
