// Figures 5 and 6 reproduction: SCF and TCE under Scioto vs their
// original global-counter load balancers on the heterogeneous cluster
// (paper §6.3, Figures 5 and 6).
//
// Figure 5 plots parallel speedup and Figure 6 raw run time (log2 y) for
// the same experiment, so this harness runs the sweep once and prints
// both tables.
//
// Expected shape (paper): the Scioto variants keep scaling to 64 procs;
// original SCF tracks Scioto to ~32 procs then falls behind; original TCE
// scales poorly throughout -- its fine-grained tasks hammer one shared
// counter (serialized at its home rank) and run with no locality, paying
// remote accesses Scioto's owner-seeded tasks avoid.
#include <cstdio>
#include <vector>

#include "apps/scf/scf_drivers.hpp"
#include "apps/tce/tce_drivers.hpp"
#include "base/options.hpp"
#include "base/table.hpp"

using namespace scioto;
using namespace scioto::apps;

namespace {

struct SweepPoint {
  int procs;
  double scf_scioto_s, scf_orig_s, tce_scioto_s, tce_orig_s;
};

double run_scf(int procs, const ScfSystem& sys, LbScheme lb) {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();
  ScfRunResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) { res = scf_run(rt, sys, lb); });
  return to_sec(res.fock_elapsed);
}

double run_tce(int procs, const TceSystem& sys, LbScheme lb) {
  pgas::Config cfg;
  cfg.nranks = procs;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008();
  TceRunResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) { res = tce_run(rt, sys, lb); });
  return to_sec(res.elapsed);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_fig5_fig6_apps",
               "Figures 5/6: SCF and TCE, Scioto vs Original");
  // Workloads are sized so that blocks/shells comfortably outnumber the
  // largest rank count (locality-aware placement needs rows to pin tasks
  // to, as in the paper's production-sized inputs).
  opts.add_int("scf-shells", 72, "SCF shell count");
  opts.add_int("tce-blocks", 64, "TCE block-grid side");
  opts.add_double("tce-density", 0.30, "TCE nonzero block fraction");
  opts.add_int("max-procs", 64, "largest process count");
  if (!opts.parse(argc, argv)) return 0;

  ScfConfig scfg;
  scfg.nshells = static_cast<int>(opts.get_int("scf-shells"));
  scfg.min_shell = 2;
  scfg.max_shell = 6;
  scfg.box = 15.0;  // ~400k surviving quartets at 72 shells
  scfg.iterations = 1;  // the Fock build is the measured phase
  ScfSystem scf_sys = ScfSystem::build(scfg);

  TceConfig tcfg;
  tcfg.nblocks = static_cast<int>(opts.get_int("tce-blocks"));
  tcfg.min_block = 3;
  tcfg.max_block = 8;  // ~9 us average triples: fine-grained, as in TCE
  tcfg.density = opts.get_double("tce-density");
  TceSystem tce_sys = TceSystem::build(tcfg);

  std::printf("SCF: %d shells, %lld basis functions, %d tasks/iter\n",
              scf_sys.nsh, static_cast<long long>(scf_sys.nbf),
              scf_sys.nsh * scf_sys.nsh);
  std::printf("TCE: %d^2 blocks, n=%lld, %zu block-triple tasks\n",
              tce_sys.nb, static_cast<long long>(tce_sys.n),
              tce_sys.tasks().size());

  std::vector<SweepPoint> points;
  const int maxp = static_cast<int>(opts.get_int("max-procs"));
  for (int p = 1; p <= maxp; p *= 2) {
    SweepPoint pt;
    pt.procs = p;
    pt.scf_scioto_s = run_scf(p, scf_sys, LbScheme::Scioto);
    pt.scf_orig_s = run_scf(p, scf_sys, LbScheme::GlobalCounter);
    pt.tce_scioto_s = run_tce(p, tce_sys, LbScheme::Scioto);
    pt.tce_orig_s = run_tce(p, tce_sys, LbScheme::GlobalCounter);
    points.push_back(pt);
  }

  const SweepPoint& base = points.front();
  Table f5({"Procs", "SCF", "TCE", "SCF-Original", "TCE-Original"});
  for (const SweepPoint& pt : points) {
    f5.add_row({Table::fmt(std::int64_t{pt.procs}),
                Table::fmt(base.scf_scioto_s / pt.scf_scioto_s, 2),
                Table::fmt(base.tce_scioto_s / pt.tce_scioto_s, 2),
                Table::fmt(base.scf_orig_s / pt.scf_orig_s, 2),
                Table::fmt(base.tce_orig_s / pt.tce_orig_s, 2)});
  }
  f5.print("Figure 5: parallel speedup of Scioto vs Original SCF and TCE "
           "on the heterogeneous cluster (ideal at 64 = 53.2x due to the "
           "Opteron/Xeon speed mix)");

  Table f6({"Procs", "SCF(s)", "TCE(s)", "SCF-Original(s)",
            "TCE-Original(s)"});
  for (const SweepPoint& pt : points) {
    f6.add_row({Table::fmt(std::int64_t{pt.procs}),
                Table::fmt(pt.scf_scioto_s, 3),
                Table::fmt(pt.tce_scioto_s, 3),
                Table::fmt(pt.scf_orig_s, 3),
                Table::fmt(pt.tce_orig_s, 3)});
  }
  f6.print("Figure 6: raw run time of the Fock-build / contraction phase "
           "(the paper plots this log2)");
  return 0;
}
